package libc

import (
	"interpose/internal/image"
	"interpose/internal/sys"
)

// Getpid returns the process id.
func (t *T) Getpid() int {
	rv, _ := t.Syscall(sys.SYS_getpid)
	return int(rv[0])
}

// Getppid returns the parent process id.
func (t *T) Getppid() int {
	rv, _ := t.Syscall(sys.SYS_getppid)
	return int(rv[0])
}

// Getuid returns the real user id.
func (t *T) Getuid() uint32 {
	rv, _ := t.Syscall(sys.SYS_getuid)
	return rv[0]
}

// Geteuid returns the effective user id.
func (t *T) Geteuid() uint32 {
	rv, _ := t.Syscall(sys.SYS_geteuid)
	return rv[0]
}

// Getgid returns the real group id.
func (t *T) Getgid() uint32 {
	rv, _ := t.Syscall(sys.SYS_getgid)
	return rv[0]
}

// Fork creates a child process that runs child on a fresh libc state and
// exits. In the parent, Fork returns the child's pid.
func (t *T) Fork(child func(ct *T)) (int, sys.Errno) {
	snap := t.snapshot()
	t.p.StageChild(func(p image.Proc) {
		ct := attachChild(snap, p)
		child(ct)
		ct.Exit(0)
	})
	rv, err := t.Syscall(sys.SYS_fork)
	return int(rv[0]), err
}

// Exec replaces the process image. On success it does not return.
func (t *T) Exec(path string, argv, envp []string) sys.Errno {
	pathAddr := t.CString(path)
	argvAddr := t.stringVec(argv)
	envpAddr := t.stringVec(envp)
	_, err := t.Syscall(sys.SYS_execve, pathAddr, argvAddr, envpAddr)
	// Only reached on failure.
	t.Free(pathAddr)
	return err
}

// stringVec builds a NULL-terminated vector of string pointers in the
// address space.
func (t *T) stringVec(ss []string) sys.Word {
	vec := t.Malloc(sys.Word(4 * (len(ss) + 1)))
	var b []byte
	for _, s := range ss {
		a := t.CString(s)
		b = append(b, byte(a), byte(a>>8), byte(a>>16), byte(a>>24))
	}
	b = append(b, 0, 0, 0, 0)
	t.p.CopyOut(vec, b)
	return vec
}

// Wait waits for any child, returning its pid and wait status.
func (t *T) Wait() (int, sys.Word, sys.Errno) { return t.Wait4(-1, 0) }

// Waitpid waits for a specific child.
func (t *T) Waitpid(pid int) (int, sys.Word, sys.Errno) { return t.Wait4(pid, 0) }

// Wait4 waits for children matching sel with the given options. Like the
// ReadRetry/WriteAll transfer helpers, it absorbs EINTR: an interrupted
// wait is reissued rather than surfaced to callers that cannot make
// progress without the child's status.
func (t *T) Wait4(sel int, options int) (int, sys.Word, sys.Errno) {
	stAddr := t.structScratch()
	for {
		rv, err := t.Syscall(sys.SYS_wait4, sys.Word(int32(sel)), stAddr, sys.Word(options), 0)
		if err == sys.EINTR {
			continue
		}
		if err != sys.OK {
			return -1, 0, err
		}
		if rv[0] == 0 {
			return 0, 0, sys.OK // WNOHANG, nothing ready
		}
		var b [4]byte
		if e := t.p.CopyIn(stAddr, b[:]); e != sys.OK {
			return -1, 0, e
		}
		status := sys.Word(b[0]) | sys.Word(b[1])<<8 | sys.Word(b[2])<<16 | sys.Word(b[3])<<24
		return int(rv[0]), status, sys.OK
	}
}

// Spawn forks and execs path with argv, inheriting this process's
// environment, and returns the child pid without waiting.
func (t *T) Spawn(path string, argv []string) (int, sys.Errno) {
	env := append([]string(nil), t.Env...)
	return t.Fork(func(ct *T) {
		err := ct.Exec(path, argv, env)
		ct.Errorf("exec %s: %s", path, err.Error())
		ct.Exit(127)
	})
}

// System forks, execs, and waits, returning the child's wait status.
func (t *T) System(path string, argv []string) (sys.Word, sys.Errno) {
	pid, err := t.Spawn(path, argv)
	if err != sys.OK {
		return 0, err
	}
	_, status, err := t.Waitpid(pid)
	return status, err
}

// Kill sends a signal.
func (t *T) Kill(pid, sig int) sys.Errno {
	_, err := t.Syscall(sys.SYS_kill, sys.Word(int32(pid)), sys.Word(sig))
	return err
}

// Signal installs a handler function for sig, returning the previous
// disposition token. Pass nil to reset to the default action, or use
// Ignore.
func (t *T) Signal(sig int, handler func(*T, int)) sys.Errno {
	var token sys.Word
	if handler != nil {
		token = t.nextToken
		t.nextToken++
		t.handlers[token] = handler
	}
	return t.sigvec(sig, token)
}

// Ignore sets sig to be discarded.
func (t *T) Ignore(sig int) sys.Errno { return t.sigvec(sig, sys.SIG_IGN) }

// DefaultSignal restores sig's default action.
func (t *T) DefaultSignal(sig int) sys.Errno { return t.sigvec(sig, sys.SIG_DFL) }

func (t *T) sigvec(sig int, handler sys.Word) sys.Errno {
	addr := t.structScratch()
	var b [sys.SigvecSize]byte
	sys.Sigvec{Handler: handler}.Encode(b[:])
	if e := t.p.CopyOut(addr, b[:]); e != sys.OK {
		return e
	}
	_, err := t.Syscall(sys.SYS_sigvec, sys.Word(sig), addr, 0)
	return err
}

// dispatchSignal is the user-mode signal trampoline installed on the
// process: the system upcalls it with the handler token.
func (t *T) dispatchSignal(sig int, handler sys.Word) {
	if fn, ok := t.handlers[handler]; ok {
		fn(t, sig)
	}
}

// Sigblock adds signals to the blocked mask, returning the old mask.
func (t *T) Sigblock(mask uint32) uint32 {
	rv, _ := t.Syscall(sys.SYS_sigblock, mask)
	return rv[0]
}

// Sigsetmask replaces the blocked mask, returning the old mask.
func (t *T) Sigsetmask(mask uint32) uint32 {
	rv, _ := t.Syscall(sys.SYS_sigsetmask, mask)
	return rv[0]
}

// Sigpause atomically sets the mask and waits for a signal.
func (t *T) Sigpause(mask uint32) {
	t.Syscall(sys.SYS_sigpause, mask)
}

// Setitimer arms (or disarms, with a zero value) the real interval timer,
// returning the previous setting.
func (t *T) Setitimer(value, interval sys.Timeval) (sys.Itimerval, sys.Errno) {
	newAddr := t.structScratch()
	oldAddr := newAddr + sys.ItimervalSize
	var b [sys.ItimervalSize]byte
	sys.Itimerval{Interval: interval, Value: value}.Encode(b[:])
	if e := t.p.CopyOut(newAddr, b[:]); e != sys.OK {
		return sys.Itimerval{}, e
	}
	if _, err := t.Syscall(sys.SYS_setitimer, sys.ITIMER_REAL, newAddr, oldAddr); err != sys.OK {
		return sys.Itimerval{}, err
	}
	if e := t.p.CopyIn(oldAddr, b[:]); e != sys.OK {
		return sys.Itimerval{}, e
	}
	return sys.DecodeItimerval(b[:]), sys.OK
}

// Getitimer reads the real interval timer.
func (t *T) Getitimer() (sys.Itimerval, sys.Errno) {
	addr := t.structScratch()
	if _, err := t.Syscall(sys.SYS_getitimer, sys.ITIMER_REAL, addr); err != sys.OK {
		return sys.Itimerval{}, err
	}
	var b [sys.ItimervalSize]byte
	if e := t.p.CopyIn(addr, b[:]); e != sys.OK {
		return sys.Itimerval{}, e
	}
	return sys.DecodeItimerval(b[:]), sys.OK
}

// Alarm schedules a SIGALRM after sec seconds (0 cancels), returning the
// seconds previously remaining — the classic library routine over
// setitimer.
func (t *T) Alarm(sec uint32) uint32 {
	old, err := t.Setitimer(sys.Timeval{Sec: sec}, sys.Timeval{})
	if err != sys.OK {
		return 0
	}
	return old.Value.Sec
}

// SleepUsec suspends the process for the given number of microseconds,
// implemented the 4.3BSD way: an interval timer plus sigpause.
func (t *T) SleepUsec(usec uint32) {
	if usec == 0 {
		return
	}
	done := false
	t.Signal(sys.SIGALRM, func(*T, int) { done = true })
	t.Setitimer(sys.Timeval{Sec: usec / 1_000_000, Usec: usec % 1_000_000}, sys.Timeval{})
	for !done {
		t.Sigpause(0)
	}
	t.DefaultSignal(sys.SIGALRM)
}

// Sleep suspends the process for sec seconds.
func (t *T) Sleep(sec uint32) { t.SleepUsec(sec * 1_000_000) }

// Gettimeofday returns the current time of day.
func (t *T) Gettimeofday() (sys.Timeval, sys.Errno) {
	addr := t.structScratch()
	if _, err := t.Syscall(sys.SYS_gettimeofday, addr, 0); err != sys.OK {
		return sys.Timeval{}, err
	}
	var b [sys.TimevalSize]byte
	if e := t.p.CopyIn(addr, b[:]); e != sys.OK {
		return sys.Timeval{}, e
	}
	return sys.DecodeTimeval(b[:]), sys.OK
}

// Getrusage returns resource usage for who (sys.RUSAGE_SELF or
// sys.RUSAGE_CHILDREN).
func (t *T) Getrusage(who sys.Word) (sys.Rusage, sys.Errno) {
	addr := t.structScratch()
	if _, err := t.Syscall(sys.SYS_getrusage, who, addr); err != sys.OK {
		return sys.Rusage{}, err
	}
	var b [sys.RusageSize]byte
	if e := t.p.CopyIn(addr, b[:]); e != sys.OK {
		return sys.Rusage{}, e
	}
	return sys.DecodeRusage(b[:]), sys.OK
}

// Getrlimit returns a resource limit.
func (t *T) Getrlimit(res int) (sys.Rlimit, sys.Errno) {
	addr := t.structScratch()
	if _, err := t.Syscall(sys.SYS_getrlimit, sys.Word(res), addr); err != sys.OK {
		return sys.Rlimit{}, err
	}
	var b [sys.RlimitSize]byte
	if e := t.p.CopyIn(addr, b[:]); e != sys.OK {
		return sys.Rlimit{}, e
	}
	return sys.DecodeRlimit(b[:]), sys.OK
}

// Setrlimit sets a resource limit.
func (t *T) Setrlimit(res int, rl sys.Rlimit) sys.Errno {
	addr := t.structScratch()
	var b [sys.RlimitSize]byte
	rl.Encode(b[:])
	if e := t.p.CopyOut(addr, b[:]); e != sys.OK {
		return e
	}
	_, err := t.Syscall(sys.SYS_setrlimit, sys.Word(res), addr)
	return err
}

// Gethostname returns the system hostname.
func (t *T) Gethostname() (string, sys.Errno) {
	buf := t.ensureIOBuf(sys.HostnameMax)
	if _, err := t.Syscall(sys.SYS_gethostname, buf, sys.HostnameMax); err != sys.OK {
		return "", err
	}
	return t.GoString(buf), sys.OK
}
