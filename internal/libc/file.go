package libc

import "interpose/internal/sys"

// File-descriptor system call wrappers. Each marshals its arguments into
// the process address space and issues the corresponding system call.

// Open opens path with the given flags and creation mode.
func (t *T) Open(path string, flags int, mode uint32) (int, sys.Errno) {
	a1, _, e := t.pathScratch(path, "")
	if e != sys.OK {
		return -1, e
	}
	rv, err := t.Syscall(sys.SYS_open, a1, sys.Word(flags), mode)
	return int(rv[0]), err
}

// Creat creates (or truncates) path for writing.
func (t *T) Creat(path string, mode uint32) (int, sys.Errno) {
	return t.Open(path, sys.O_WRONLY|sys.O_CREAT|sys.O_TRUNC, mode)
}

// Close closes a descriptor.
func (t *T) Close(fd int) sys.Errno {
	_, err := t.Syscall(sys.SYS_close, sys.Word(fd))
	return err
}

// Fsync forces fd's data to stable storage. With a write-ahead journal
// attached it is the group-commit barrier.
func (t *T) Fsync(fd int) sys.Errno {
	_, err := t.Syscall(sys.SYS_fsync, sys.Word(fd))
	return err
}

// Sync flushes all pending filesystem state to stable storage.
func (t *T) Sync() sys.Errno {
	_, err := t.Syscall(sys.SYS_sync)
	return err
}

// Read reads into b, staging through the address space.
func (t *T) Read(fd int, b []byte) (int, sys.Errno) {
	if len(b) == 0 {
		return 0, sys.OK
	}
	buf := t.ensureIOBuf(len(b))
	rv, err := t.Syscall(sys.SYS_read, sys.Word(fd), buf, sys.Word(len(b)))
	if err != sys.OK {
		return 0, err
	}
	n := int(rv[0])
	if n > 0 {
		if e := t.p.CopyIn(buf, b[:n]); e != sys.OK {
			return 0, e
		}
	}
	return n, sys.OK
}

// Write writes b, staging through the address space.
func (t *T) Write(fd int, b []byte) (int, sys.Errno) {
	if len(b) == 0 {
		return 0, sys.OK
	}
	buf := t.ensureIOBuf(len(b))
	if e := t.p.CopyOut(buf, b); e != sys.OK {
		return 0, e
	}
	rv, err := t.Syscall(sys.SYS_write, sys.Word(fd), buf, sys.Word(len(b)))
	return int(rv[0]), err
}

// ReadRetry is Read with EINTR retry: an interrupted read that moved no
// data is reissued. Partial reads are returned as-is (short reads are part
// of the read contract). Programs that do not use interrupted reads as a
// control-flow signal should prefer this over Read.
func (t *T) ReadRetry(fd int, b []byte) (int, sys.Errno) {
	for {
		n, err := t.Read(fd, b)
		if err == sys.EINTR {
			continue
		}
		return n, err
	}
}

// WriteAll writes all of b: EINTR is retried and short writes are
// completed. It returns the bytes actually written, which is len(b)
// unless a non-retryable error stopped progress.
func (t *T) WriteAll(fd int, b []byte) (int, sys.Errno) {
	total := 0
	for len(b) > 0 {
		n, err := t.Write(fd, b)
		if n > 0 {
			total += n
			b = b[n:]
		}
		switch {
		case err == sys.EINTR:
			continue
		case err != sys.OK:
			return total, err
		case n == 0:
			// No progress and no error: report rather than spin.
			return total, sys.EIO
		}
	}
	return total, sys.OK
}

// WriteString writes s to fd, retrying EINTR and partial writes.
func (t *T) WriteString(fd int, s string) sys.Errno {
	_, err := t.WriteAll(fd, []byte(s))
	return err
}

// Lseek repositions a descriptor.
func (t *T) Lseek(fd int, off int64, whence int) (int64, sys.Errno) {
	rv, err := t.Syscall(sys.SYS_lseek, sys.Word(fd), sys.Word(int32(off)), sys.Word(whence))
	return int64(int32(rv[0])), err
}

// Dup duplicates a descriptor at the lowest free slot.
func (t *T) Dup(fd int) (int, sys.Errno) {
	rv, err := t.Syscall(sys.SYS_dup, sys.Word(fd))
	return int(rv[0]), err
}

// Dup2 duplicates oldfd onto newfd.
func (t *T) Dup2(oldfd, newfd int) sys.Errno {
	_, err := t.Syscall(sys.SYS_dup2, sys.Word(oldfd), sys.Word(newfd))
	return err
}

// Pipe creates a pipe, returning the read and write descriptors.
func (t *T) Pipe() (int, int, sys.Errno) {
	rv, err := t.Syscall(sys.SYS_pipe)
	return int(rv[0]), int(rv[1]), err
}

// Fcntl performs a descriptor control operation.
func (t *T) Fcntl(fd, cmd int, arg sys.Word) (sys.Word, sys.Errno) {
	rv, err := t.Syscall(sys.SYS_fcntl, sys.Word(fd), sys.Word(cmd), arg)
	return rv[0], err
}

// SetCloexec marks a descriptor close-on-exec.
func (t *T) SetCloexec(fd int) sys.Errno {
	_, err := t.Fcntl(fd, sys.F_SETFD, sys.FD_CLOEXEC)
	return err
}

// Flock applies or removes an advisory lock.
func (t *T) Flock(fd, op int) sys.Errno {
	_, err := t.Syscall(sys.SYS_flock, sys.Word(fd), sys.Word(op))
	return err
}

// Stat stats a path, following symbolic links.
func (t *T) Stat(path string) (sys.Stat, sys.Errno) { return t.statCall(sys.SYS_stat, path) }

// Lstat stats a path without following a final symbolic link.
func (t *T) Lstat(path string) (sys.Stat, sys.Errno) { return t.statCall(sys.SYS_lstat, path) }

func (t *T) statCall(num int, path string) (sys.Stat, sys.Errno) {
	a1, _, e := t.pathScratch(path, "")
	if e != sys.OK {
		return sys.Stat{}, e
	}
	stAddr := t.structScratch()
	if _, err := t.Syscall(num, a1, stAddr); err != sys.OK {
		return sys.Stat{}, err
	}
	var b [sys.StatSize]byte
	if e := t.p.CopyIn(stAddr, b[:]); e != sys.OK {
		return sys.Stat{}, e
	}
	return sys.DecodeStat(b[:]), sys.OK
}

// Fstat stats an open descriptor.
func (t *T) Fstat(fd int) (sys.Stat, sys.Errno) {
	stAddr := t.structScratch()
	if _, err := t.Syscall(sys.SYS_fstat, sys.Word(fd), stAddr); err != sys.OK {
		return sys.Stat{}, err
	}
	var b [sys.StatSize]byte
	if e := t.p.CopyIn(stAddr, b[:]); e != sys.OK {
		return sys.Stat{}, e
	}
	return sys.DecodeStat(b[:]), sys.OK
}

// Access checks accessibility of path using the real credentials.
func (t *T) Access(path string, mode int) sys.Errno {
	a1, _, e := t.pathScratch(path, "")
	if e != sys.OK {
		return e
	}
	_, err := t.Syscall(sys.SYS_access, a1, sys.Word(mode))
	return err
}

// Unlink removes a directory entry.
func (t *T) Unlink(path string) sys.Errno { return t.path1Call(sys.SYS_unlink, path) }

// Mkdir creates a directory.
func (t *T) Mkdir(path string, mode uint32) sys.Errno {
	a1, _, e := t.pathScratch(path, "")
	if e != sys.OK {
		return e
	}
	_, err := t.Syscall(sys.SYS_mkdir, a1, mode)
	return err
}

// Rmdir removes an empty directory.
func (t *T) Rmdir(path string) sys.Errno { return t.path1Call(sys.SYS_rmdir, path) }

// Chdir changes the working directory.
func (t *T) Chdir(path string) sys.Errno { return t.path1Call(sys.SYS_chdir, path) }

// Fchdir changes the working directory to an open descriptor's directory.
func (t *T) Fchdir(fd int) sys.Errno {
	_, err := t.Syscall(sys.SYS_fchdir, sys.Word(fd))
	return err
}

// Chroot changes the root directory.
func (t *T) Chroot(path string) sys.Errno { return t.path1Call(sys.SYS_chroot, path) }

func (t *T) path1Call(num int, path string) sys.Errno {
	a1, _, e := t.pathScratch(path, "")
	if e != sys.OK {
		return e
	}
	_, err := t.Syscall(num, a1)
	return err
}

func (t *T) path2Call(num int, p1, p2 string) sys.Errno {
	a1, a2, e := t.pathScratch(p1, p2)
	if e != sys.OK {
		return e
	}
	_, err := t.Syscall(num, a1, a2)
	return err
}

// Link creates a hard link newPath to oldPath.
func (t *T) Link(oldPath, newPath string) sys.Errno {
	return t.path2Call(sys.SYS_link, oldPath, newPath)
}

// Symlink creates a symbolic link at linkPath pointing to target.
func (t *T) Symlink(target, linkPath string) sys.Errno {
	return t.path2Call(sys.SYS_symlink, target, linkPath)
}

// Rename moves oldPath to newPath.
func (t *T) Rename(oldPath, newPath string) sys.Errno {
	return t.path2Call(sys.SYS_rename, oldPath, newPath)
}

// Readlink reads a symbolic link's target.
func (t *T) Readlink(path string) (string, sys.Errno) {
	a1, _, e := t.pathScratch(path, "")
	if e != sys.OK {
		return "", e
	}
	buf := t.ensureIOBuf(sys.PathMax)
	rv, err := t.Syscall(sys.SYS_readlink, a1, buf, sys.PathMax)
	if err != sys.OK {
		return "", err
	}
	b := make([]byte, rv[0])
	if e := t.p.CopyIn(buf, b); e != sys.OK {
		return "", e
	}
	return string(b), sys.OK
}

// Chmod changes a file's permission bits.
func (t *T) Chmod(path string, mode uint32) sys.Errno {
	a1, _, e := t.pathScratch(path, "")
	if e != sys.OK {
		return e
	}
	_, err := t.Syscall(sys.SYS_chmod, a1, mode)
	return err
}

// Chown changes a file's ownership.
func (t *T) Chown(path string, uid, gid uint32) sys.Errno {
	a1, _, e := t.pathScratch(path, "")
	if e != sys.OK {
		return e
	}
	_, err := t.Syscall(sys.SYS_chown, a1, uid, gid)
	return err
}

// Truncate sets a file's length by path.
func (t *T) Truncate(path string, length int64) sys.Errno {
	a1, _, e := t.pathScratch(path, "")
	if e != sys.OK {
		return e
	}
	_, err := t.Syscall(sys.SYS_truncate, a1, sys.Word(int32(length)))
	return err
}

// Ftruncate sets a file's length by descriptor.
func (t *T) Ftruncate(fd int, length int64) sys.Errno {
	_, err := t.Syscall(sys.SYS_ftruncate, sys.Word(fd), sys.Word(int32(length)))
	return err
}

// Utimes sets a file's access and modification times (zero Timevals set
// the current time, via a null pointer).
func (t *T) Utimes(path string, atime, mtime sys.Timeval) sys.Errno {
	a1, _, e := t.pathScratch(path, "")
	if e != sys.OK {
		return e
	}
	var tvAddr sys.Word
	if atime != (sys.Timeval{}) || mtime != (sys.Timeval{}) {
		tvAddr = t.structScratch()
		var b [2 * sys.TimevalSize]byte
		atime.Encode(b[0:])
		mtime.Encode(b[8:])
		if e := t.p.CopyOut(tvAddr, b[:]); e != sys.OK {
			return e
		}
	}
	_, err := t.Syscall(sys.SYS_utimes, a1, tvAddr)
	return err
}

// Umask sets the file-creation mask, returning the previous one.
func (t *T) Umask(mask uint32) uint32 {
	rv, _ := t.Syscall(sys.SYS_umask, mask)
	return rv[0]
}

// Ioctl performs a device control operation with a struct argument
// already placed in the address space at argAddr.
func (t *T) Ioctl(fd int, req sys.Word, argAddr sys.Word) sys.Errno {
	_, err := t.Syscall(sys.SYS_ioctl, sys.Word(fd), req, argAddr)
	return err
}

// Getdirentries reads directory records from fd into the staging buffer
// and decodes them. It returns zero records at end of directory.
func (t *T) Getdirentries(fd int) ([]sys.Dirent, sys.Errno) {
	buf := t.ensureIOBuf(4096)
	rv, err := t.Syscall(sys.SYS_getdirentries, sys.Word(fd), buf, 4096, 0)
	if err != sys.OK {
		return nil, err
	}
	n := int(rv[0])
	if n == 0 {
		return nil, sys.OK
	}
	b := make([]byte, n)
	if e := t.p.CopyIn(buf, b); e != sys.OK {
		return nil, e
	}
	return sys.DecodeDirents(b), sys.OK
}

// ReadDir returns the names in directory path, excluding "." and "..".
func (t *T) ReadDir(path string) ([]string, sys.Errno) {
	fd, err := t.Open(path, sys.O_RDONLY, 0)
	if err != sys.OK {
		return nil, err
	}
	defer t.Close(fd)
	var names []string
	for {
		ents, err := t.Getdirentries(fd)
		if err != sys.OK {
			return nil, err
		}
		if len(ents) == 0 {
			return names, sys.OK
		}
		for _, d := range ents {
			if d.Name != "." && d.Name != ".." {
				names = append(names, d.Name)
			}
		}
	}
}

// ReadFile reads the entire file at path.
func (t *T) ReadFile(path string) ([]byte, sys.Errno) {
	fd, err := t.Open(path, sys.O_RDONLY, 0)
	if err != sys.OK {
		return nil, err
	}
	defer t.Close(fd)
	var out []byte
	bp := getXfer()
	defer putXfer(bp)
	buf := *bp
	for {
		n, err := t.ReadRetry(fd, buf)
		if err != sys.OK {
			return nil, err
		}
		if n == 0 {
			return out, sys.OK
		}
		out = append(out, buf[:n]...)
	}
}

// WriteFile creates path with the given contents and mode.
func (t *T) WriteFile(path string, data []byte, mode uint32) sys.Errno {
	fd, err := t.Open(path, sys.O_WRONLY|sys.O_CREAT|sys.O_TRUNC, mode)
	if err != sys.OK {
		return err
	}
	defer t.Close(fd)
	_, werr := t.WriteAll(fd, data)
	return werr
}
