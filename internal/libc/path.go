package libc

import (
	"strings"

	"interpose/internal/sys"
)

// Getwd returns the absolute pathname of the working directory. Like the
// historical 4.3BSD getwd, it is a library routine — there is no getcwd
// system call — built by walking ".." and matching inode numbers in each
// parent directory.
func (t *T) Getwd() (string, sys.Errno) {
	var parts []string
	prefix := "."
	cur, err := t.Stat(".")
	if err != sys.OK {
		return "", err
	}
	for depth := 0; depth < 256; depth++ {
		parentPath := prefix + "/.."
		parent, err := t.Stat(parentPath)
		if err != sys.OK {
			return "", err
		}
		if parent.Ino == cur.Ino && parent.Dev == cur.Dev {
			// Reached the root.
			if len(parts) == 0 {
				return "/", sys.OK
			}
			reverse(parts)
			return "/" + strings.Join(parts, "/"), sys.OK
		}
		name, err := t.findEntry(parentPath, cur.Ino)
		if err != sys.OK {
			return "", err
		}
		parts = append(parts, name)
		cur = parent
		prefix = parentPath
	}
	return "", sys.ELOOP
}

// findEntry scans directory dirPath for the entry with inode ino.
func (t *T) findEntry(dirPath string, ino uint32) (string, sys.Errno) {
	fd, err := t.Open(dirPath, sys.O_RDONLY, 0)
	if err != sys.OK {
		return "", err
	}
	defer t.Close(fd)
	for {
		ents, err := t.Getdirentries(fd)
		if err != sys.OK {
			return "", err
		}
		if len(ents) == 0 {
			return "", sys.ENOENT
		}
		for _, d := range ents {
			if d.Ino == ino && d.Name != "." && d.Name != ".." {
				return d.Name, sys.OK
			}
		}
	}
}

func reverse(s []string) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// Basename returns the final component of a path.
func Basename(path string) string {
	path = strings.TrimRight(path, "/")
	if path == "" {
		return "/"
	}
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// Dirname returns the directory part of a path.
func Dirname(path string) string {
	trimmed := strings.TrimRight(path, "/")
	if trimmed == "" {
		if strings.HasPrefix(path, "/") {
			return "/"
		}
		return "."
	}
	path = trimmed
	i := strings.LastIndexByte(path, '/')
	switch {
	case i < 0:
		return "."
	case i == 0:
		return "/"
	default:
		return path[:i]
	}
}

// JoinPath joins two path components.
func JoinPath(dir, name string) string {
	if dir == "" || name != "" && name[0] == '/' {
		return name
	}
	if strings.HasSuffix(dir, "/") {
		return dir + name
	}
	return dir + "/" + name
}

// MkdirAll creates path and any missing parents.
func (t *T) MkdirAll(path string, mode uint32) sys.Errno {
	if path == "" {
		return sys.ENOENT
	}
	var build string
	if path[0] == '/' {
		build = "/"
	}
	for _, part := range strings.Split(path, "/") {
		if part == "" {
			continue
		}
		build = JoinPath(build, part)
		if err := t.Mkdir(build, mode); err != sys.OK && err != sys.EEXIST {
			return err
		}
	}
	return sys.OK
}

// SearchPath resolves a command name against the PATH environment
// variable (or /bin:/usr/bin), returning the first executable match.
func (t *T) SearchPath(name string) (string, sys.Errno) {
	if strings.ContainsRune(name, '/') {
		return name, sys.OK
	}
	path := t.Getenv("PATH")
	if path == "" {
		path = "/bin:/usr/bin"
	}
	for _, dir := range strings.Split(path, ":") {
		if dir == "" {
			dir = "."
		}
		cand := JoinPath(dir, name)
		if err := t.Access(cand, sys.X_OK); err == sys.OK {
			return cand, sys.OK
		}
	}
	return "", sys.ENOENT
}
