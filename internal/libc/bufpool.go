package libc

import "sync"

// xferPool recycles the fixed-size transfer buffers the convenience I/O
// loops (ReadFile, stdio fill, ReadAll) stage reads through. The loops
// issue one system call per buffer-full, so without pooling every
// iteration of every whole-file read allocated a fresh chunk.
var xferPool = sync.Pool{New: func() any {
	b := make([]byte, xferBufSize)
	return &b
}}

const xferBufSize = 8192

func getXfer() *[]byte   { return xferPool.Get().(*[]byte) }
func putXfer(bp *[]byte) { xferPool.Put(bp) }
