// Package mem implements the simulated 32-bit address spaces in which
// application processes live. Addresses passed through the system interface
// are offsets into one of these spaces; the kernel and interposition agents
// move data in and out with CopyIn/CopyOut, exactly as a real kernel would.
//
// An address space is sparse: pages are allocated on first touch within
// mapped regions. Two regions exist by convention — a data/heap segment
// growing up from DataBase under control of brk, and a stack segment ending
// at StackTop growing down.
package mem

import (
	"sync"

	"interpose/internal/sys"
)

// Layout constants of the simulated machine.
const (
	PageSize  = sys.PageSize
	pageShift = 12

	// DataBase is the bottom of the data/heap segment. The page at zero is
	// never mapped, so null-pointer dereferences fault.
	DataBase sys.Word = 0x0010_0000
	// StackTop is one past the highest stack address.
	StackTop sys.Word = 0x7fff_0000
	// StackSize is the size of the stack segment.
	StackSize sys.Word = 1 << 20

	// EmuBase is the bottom of the emulator segment: the region in which
	// interposition agents — which logically live in their client's
	// address space, as on Mach 2.5 — stage strings and structures for
	// downcalls. It is always mapped.
	EmuBase sys.Word = 0x7fff_0000
	// EmuSize is the size of the emulator segment.
	EmuSize sys.Word = 64 * 1024
)

// AS is one simulated address space.
type AS struct {
	mu    sync.Mutex
	pages map[sys.Word]*[PageSize]byte
	brk   sys.Word // current end of the data segment
	limit sys.Word // maximum brk (RLIMIT_DATA analog), 0 = default
}

// NewAS returns an empty address space with the break at DataBase and the
// stack segment mapped.
func NewAS() *AS {
	return &AS{
		pages: make(map[sys.Word]*[PageSize]byte),
		brk:   DataBase,
	}
}

// Reset discards all mappings, returning the space to its initial state.
// Used by execve, which clears its caller's address space.
func (a *AS) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.pages = make(map[sys.Word]*[PageSize]byte)
	a.brk = DataBase
}

// Clone returns a copy of the address space, as done by fork.
func (a *AS) Clone() *AS {
	a.mu.Lock()
	defer a.mu.Unlock()
	c := &AS{
		pages: make(map[sys.Word]*[PageSize]byte, len(a.pages)),
		brk:   a.brk,
		limit: a.limit,
	}
	for k, pg := range a.pages {
		cp := *pg
		c.pages[k] = &cp
	}
	return c
}

// Brk returns the current program break.
func (a *AS) Brk() sys.Word {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.brk
}

// SetBrk moves the program break. Growing past the data limit or into the
// stack segment fails with ENOMEM; shrinking below DataBase fails with
// EINVAL. Pages beyond a lowered break are discarded.
func (a *AS) SetBrk(addr sys.Word) sys.Errno {
	a.mu.Lock()
	defer a.mu.Unlock()
	if addr < DataBase {
		return sys.EINVAL
	}
	lim := a.limit
	if lim == 0 {
		lim = StackTop - StackSize
	}
	if addr > lim {
		return sys.ENOMEM
	}
	if addr < a.brk {
		// Release whole pages above the new break.
		for pg := range a.pages {
			if pg >= pageUp(addr) && pg < pageUp(a.brk) && pg >= DataBase {
				delete(a.pages, pg)
			}
		}
	}
	a.brk = addr
	return sys.OK
}

// SetLimit sets the maximum data-segment size in bytes (RLIMIT_DATA).
func (a *AS) SetLimit(bytes sys.Word) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if bytes == 0 || bytes > StackTop-StackSize-DataBase {
		a.limit = 0
		return
	}
	a.limit = DataBase + bytes
}

// Pages returns the number of resident pages, for rusage accounting.
func (a *AS) Pages() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pages)
}

func pageUp(addr sys.Word) sys.Word {
	return (addr + PageSize - 1) &^ (PageSize - 1)
}

// valid reports whether [addr, addr+n) lies in a mapped region: below the
// break in the data segment, inside the stack segment, or inside the
// emulator segment. n may be zero.
func (a *AS) valid(addr sys.Word, n int) bool {
	if n < 0 {
		return false
	}
	end := uint64(addr) + uint64(n)
	if end > uint64(EmuBase)+uint64(EmuSize) {
		return false
	}
	e := sys.Word(end)
	inData := addr >= DataBase && e <= pageUp(a.brk)
	inStack := addr >= StackTop-StackSize && e <= StackTop
	inEmu := addr >= EmuBase && end <= uint64(EmuBase)+uint64(EmuSize)
	if n == 0 {
		return inData || inStack || inEmu || addr >= DataBase
	}
	return inData || inStack || inEmu
}

// page returns the page containing addr, allocating it if needed.
func (a *AS) page(addr sys.Word) *[PageSize]byte {
	base := addr &^ (PageSize - 1)
	pg := a.pages[base]
	if pg == nil {
		pg = new([PageSize]byte)
		a.pages[base] = pg
	}
	return pg
}

// CopyIn copies len(p) bytes out of the address space at addr into p.
func (a *AS) CopyIn(addr sys.Word, p []byte) sys.Errno {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.valid(addr, len(p)) {
		return sys.EFAULT
	}
	for len(p) > 0 {
		pg := a.page(addr)
		off := int(addr & (PageSize - 1))
		n := copy(p, pg[off:])
		p = p[n:]
		addr += sys.Word(n)
	}
	return sys.OK
}

// CopyOut copies p into the address space at addr.
func (a *AS) CopyOut(addr sys.Word, p []byte) sys.Errno {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.valid(addr, len(p)) {
		return sys.EFAULT
	}
	for len(p) > 0 {
		pg := a.page(addr)
		off := int(addr & (PageSize - 1))
		n := copy(pg[off:], p)
		p = p[n:]
		addr += sys.Word(n)
	}
	return sys.OK
}

// CopyInString copies a NUL-terminated string of at most max bytes
// (excluding the NUL) starting at addr. A string running past max bytes
// without a NUL yields ENAMETOOLONG; an unmapped address yields EFAULT.
func (a *AS) CopyInString(addr sys.Word, max int) (string, sys.Errno) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []byte
	for len(out) <= max {
		if !a.valid(addr, 1) {
			return "", sys.EFAULT
		}
		pg := a.page(addr)
		off := int(addr & (PageSize - 1))
		chunk := pg[off:]
		for i, b := range chunk {
			if b == 0 {
				return string(append(out, chunk[:i]...)), sys.OK
			}
			if len(out)+i+1 > max {
				return "", sys.ENAMETOOLONG
			}
		}
		out = append(out, chunk...)
		addr += sys.Word(len(chunk))
	}
	return "", sys.ENAMETOOLONG
}

// Word32 reads a 32-bit little-endian word at addr.
func (a *AS) Word32(addr sys.Word) (sys.Word, sys.Errno) {
	var b [4]byte
	if e := a.CopyIn(addr, b[:]); e != sys.OK {
		return 0, e
	}
	return sys.Word(b[0]) | sys.Word(b[1])<<8 | sys.Word(b[2])<<16 | sys.Word(b[3])<<24, sys.OK
}

// SetWord32 writes a 32-bit little-endian word at addr.
func (a *AS) SetWord32(addr sys.Word, v sys.Word) sys.Errno {
	b := [4]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
	return a.CopyOut(addr, b[:])
}
