package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"interpose/internal/sys"
)

func TestCopyRoundTrip(t *testing.T) {
	a := NewAS()
	if e := a.SetBrk(DataBase + 64*1024); e != sys.OK {
		t.Fatal(e)
	}
	f := func(data []byte, off uint16) bool {
		addr := DataBase + sys.Word(off)
		if e := a.CopyOut(addr, data); e != sys.OK {
			return false
		}
		got := make([]byte, len(data))
		if e := a.CopyIn(addr, got); e != sys.OK {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCopyCrossesPages(t *testing.T) {
	a := NewAS()
	a.SetBrk(DataBase + 3*PageSize)
	data := make([]byte, 2*PageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	addr := DataBase + PageSize/2 // straddles two page boundaries
	if e := a.CopyOut(addr, data); e != sys.OK {
		t.Fatal(e)
	}
	got := make([]byte, len(data))
	if e := a.CopyIn(addr, got); e != sys.OK {
		t.Fatal(e)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page copy corrupted")
	}
}

func TestFaults(t *testing.T) {
	a := NewAS()
	a.SetBrk(DataBase + PageSize)
	buf := make([]byte, 16)
	cases := []sys.Word{
		0,                               // null page
		DataBase - PageSize,             // below data
		DataBase + 2*PageSize,           // beyond brk
		StackTop - StackSize - PageSize, // hole below stack
	}
	for _, addr := range cases {
		if e := a.CopyIn(addr, buf); e != sys.EFAULT {
			t.Errorf("CopyIn(%#x) = %v, want EFAULT", addr, e)
		}
		if e := a.CopyOut(addr, buf); e != sys.EFAULT {
			t.Errorf("CopyOut(%#x) = %v, want EFAULT", addr, e)
		}
	}
}

func TestStackSegment(t *testing.T) {
	a := NewAS()
	addr := StackTop - 256
	if e := a.CopyOut(addr, []byte("on the stack")); e != sys.OK {
		t.Fatal(e)
	}
	s, e := a.CopyInString(addr, 100)
	if e != sys.OK || s != "on the stack" {
		t.Fatalf("%v %q", e, s)
	}
	// Reading past StackTop faults.
	if e := a.CopyOut(StackTop-4, make([]byte, 8)); e == sys.OK {
		t.Fatal("write past StackTop allowed")
	}
}

func TestEmuSegment(t *testing.T) {
	a := NewAS()
	if e := a.CopyOut(EmuBase, []byte("agent scratch")); e != sys.OK {
		t.Fatal(e)
	}
	if e := a.CopyOut(EmuBase+EmuSize-4, make([]byte, 8)); e != sys.EFAULT {
		t.Fatalf("write past emu segment = %v", e)
	}
}

func TestBrkSemantics(t *testing.T) {
	a := NewAS()
	if a.Brk() != DataBase {
		t.Fatal("initial brk")
	}
	if e := a.SetBrk(DataBase - 1); e != sys.EINVAL {
		t.Fatalf("shrink below base = %v", e)
	}
	if e := a.SetBrk(StackTop); e != sys.ENOMEM {
		t.Fatalf("grow into stack = %v", e)
	}
	if e := a.SetBrk(DataBase + 10*PageSize); e != sys.OK {
		t.Fatal(e)
	}
	// Data beyond a lowered break is discarded; re-raising sees zeroes.
	a.CopyOut(DataBase+5*PageSize, []byte{1, 2, 3})
	a.SetBrk(DataBase + PageSize)
	a.SetBrk(DataBase + 10*PageSize)
	var b [3]byte
	a.CopyIn(DataBase+5*PageSize, b[:])
	if b != [3]byte{} {
		t.Fatalf("stale data after brk shrink/grow: %v", b)
	}
}

func TestDataLimit(t *testing.T) {
	a := NewAS()
	a.SetLimit(4 * PageSize)
	if e := a.SetBrk(DataBase + 8*PageSize); e != sys.ENOMEM {
		t.Fatalf("limit not enforced: %v", e)
	}
	if e := a.SetBrk(DataBase + 2*PageSize); e != sys.OK {
		t.Fatal(e)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewAS()
	a.SetBrk(DataBase + PageSize)
	a.CopyOut(DataBase, []byte("parent"))
	c := a.Clone()
	// The clone starts identical...
	s, _ := c.CopyInString(DataBase, 32)
	if s != "parent" {
		t.Fatalf("clone content %q", s)
	}
	// ...then diverges: writes to one do not affect the other.
	c.CopyOut(DataBase, []byte("child\x00"))
	s, _ = a.CopyInString(DataBase, 32)
	if s != "parent" {
		t.Fatalf("parent mutated by child write: %q", s)
	}
	a.CopyOut(DataBase, []byte("parent2"))
	s, _ = c.CopyInString(DataBase, 32)
	if s != "child" {
		t.Fatalf("child mutated by parent write: %q", s)
	}
}

func TestReset(t *testing.T) {
	a := NewAS()
	a.SetBrk(DataBase + PageSize)
	a.CopyOut(DataBase, []byte("old"))
	a.Reset()
	if a.Brk() != DataBase {
		t.Fatal("brk not reset")
	}
	if e := a.CopyIn(DataBase, make([]byte, 3)); e != sys.EFAULT {
		t.Fatalf("old mapping survives reset: %v", e)
	}
}

func TestCopyInString(t *testing.T) {
	a := NewAS()
	a.SetBrk(DataBase + PageSize)
	a.CopyOut(DataBase, append([]byte("hello"), 0))
	s, e := a.CopyInString(DataBase, 100)
	if e != sys.OK || s != "hello" {
		t.Fatalf("%v %q", e, s)
	}
	// Over-long string.
	if _, e := a.CopyInString(DataBase, 3); e != sys.ENAMETOOLONG {
		t.Fatalf("max not enforced: %v", e)
	}
	// Exactly max is fine.
	if s, e := a.CopyInString(DataBase, 5); e != sys.OK || s != "hello" {
		t.Fatalf("exact max: %v %q", e, s)
	}
	// Unmapped.
	if _, e := a.CopyInString(0, 100); e != sys.EFAULT {
		t.Fatalf("null string read: %v", e)
	}
}

func TestCopyInStringCrossesPage(t *testing.T) {
	a := NewAS()
	a.SetBrk(DataBase + 2*PageSize)
	addr := DataBase + PageSize - 3
	a.CopyOut(addr, append([]byte("straddle"), 0))
	s, e := a.CopyInString(addr, 100)
	if e != sys.OK || s != "straddle" {
		t.Fatalf("%v %q", e, s)
	}
}

func TestWord32(t *testing.T) {
	a := NewAS()
	a.SetBrk(DataBase + PageSize)
	if e := a.SetWord32(DataBase+4, 0xdeadbeef); e != sys.OK {
		t.Fatal(e)
	}
	v, e := a.Word32(DataBase + 4)
	if e != sys.OK || v != 0xdeadbeef {
		t.Fatalf("%v %#x", e, v)
	}
}

func TestPagesAccounting(t *testing.T) {
	a := NewAS()
	a.SetBrk(DataBase + 4*PageSize)
	if a.Pages() != 0 {
		t.Fatal("pages allocated eagerly")
	}
	a.CopyOut(DataBase, make([]byte, 2*PageSize+1))
	if got := a.Pages(); got != 3 {
		t.Fatalf("pages = %d, want 3", got)
	}
}
