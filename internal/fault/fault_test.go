package fault

import (
	"strings"
	"testing"
	"time"

	"interpose/internal/sys"
)

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=7,write=EIO@0.05,read:/data=short:4@0.25,path:/tmp=delay:2,open=sig:INT")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 {
		t.Fatalf("seed = %d, want 7", p.Seed)
	}
	if len(p.Rules) != 4 {
		t.Fatalf("rules = %d, want 4", len(p.Rules))
	}
	want := []Rule{
		{Call: sys.SYS_write, Effect: EffectErrno, Err: sys.EIO, Prob: 0.05},
		{Call: sys.SYS_read, Prefix: "/data", Effect: EffectShort, N: 4, Prob: 0.25},
		{Call: -1, Prefix: "/tmp", Effect: EffectDelay, N: 2, Prob: 1},
		{Call: sys.SYS_open, Effect: EffectSignal, Sig: sys.SIGINT, Prob: 1},
	}
	for i, w := range want {
		if p.Rules[i] != w {
			t.Errorf("rule %d = %+v, want %+v", i, p.Rules[i], w)
		}
	}
}

func TestParsePlanDefaultSeedAndProb(t *testing.T) {
	p, err := ParsePlan("write=ENOSPC")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 1 || p.Rules[0].Prob != 1 {
		t.Fatalf("defaults: seed=%d prob=%g", p.Seed, p.Rules[0].Prob)
	}
}

func TestParsePlanRejects(t *testing.T) {
	for _, bad := range []string{
		"",                  // no rules
		"seed=3",            // seed alone is not a plan
		"bogus=EIO",         // unknown syscall
		"write=EBOGUS",      // unknown errno
		"write=EIO@0",       // probability out of range
		"write=EIO@1.5",     // probability out of range
		"getpid=short:4",    // short on a non-transfer call
		"read=short:x",      // bad count
		"path=EIO",          // path rule without prefix
		"read:data=EIO",     // relative prefix
		"open=sig:SIGBOGUS", // unknown signal
		"write",             // no '='
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

// TestRuleStringRoundTrip checks the rendered form re-parses to the same
// rule — the property the replay log format depends on.
func TestRuleStringRoundTrip(t *testing.T) {
	spec := "seed=9,write=EIO@0.05,read=short:7@0.5,path:/z=delay:3,open:/etc=sig:SIGHUP@0.125"
	p, err := ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range p.Rules {
		again, err := ParsePlan(r.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", r.String(), err)
		}
		if again.Rules[0] != r {
			t.Fatalf("round trip %q: %+v != %+v", r.String(), again.Rules[0], r)
		}
	}
}

// fakeCtx is a minimal sys.Ctx with an in-memory pathname table: address
// 100+i holds path strings[i].
type fakeCtx struct {
	pid   int
	paths map[sys.Word]string
}

func (f *fakeCtx) PID() int                               { return f.pid }
func (f *fakeCtx) CopyIn(a sys.Word, p []byte) sys.Errno  { return sys.EFAULT }
func (f *fakeCtx) CopyOut(a sys.Word, p []byte) sys.Errno { return sys.EFAULT }
func (f *fakeCtx) CopyInString(a sys.Word, max int) (string, sys.Errno) {
	if s, ok := f.paths[a]; ok {
		return s, sys.OK
	}
	return "", sys.EFAULT
}

// TestDecisionsDeterministic runs the same decision stream twice and
// checks identical outcomes; a different seed must diverge.
func TestDecisionsDeterministic(t *testing.T) {
	plan := func(seed string) *Injector {
		p, err := ParsePlan("seed=" + seed + ",write=EIO@0.3,read=EINTR@0.3")
		if err != nil {
			t.Fatal(err)
		}
		return NewInjector(p)
	}
	run := func(in *Injector) string {
		c := &fakeCtx{pid: 5}
		var b strings.Builder
		for i := 0; i < 400; i++ {
			num := sys.SYS_write
			if i%2 == 1 {
				num = sys.SYS_read
			}
			_, _, err, handled := in.Inject(c, num, sys.Args{1, 0, 64})
			if handled {
				b.WriteString(err.Name())
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	a, b := run(plan("42")), run(plan("42"))
	if a != b {
		t.Fatal("same seed diverged")
	}
	if !strings.Contains(a, "EIO") || !strings.Contains(a, "EINTR") {
		t.Fatalf("no faults fired at p=0.3 over 400 calls: %q", a)
	}
	if c := run(plan("43")); c == a {
		t.Fatal("different seed produced the identical decision stream")
	}
}

// TestDecisionsInterleavingIndependent checks that one process's fault
// sequence does not depend on another process's calls being interleaved.
func TestDecisionsInterleavingIndependent(t *testing.T) {
	p, err := ParsePlan("seed=11,write=EIO@0.4")
	if err != nil {
		t.Fatal(err)
	}
	solo := NewInjector(p)
	mixed := NewInjector(p)
	c5, c9 := &fakeCtx{pid: 5}, &fakeCtx{pid: 9}
	var a, b strings.Builder
	for i := 0; i < 200; i++ {
		_, _, err, handled := solo.Inject(c5, sys.SYS_write, sys.Args{1, 0, 8})
		if handled {
			a.WriteString(err.Name())
		} else {
			a.WriteByte('.')
		}
		// The mixed injector sees pid 9 calls interleaved with pid 5's.
		mixed.Inject(c9, sys.SYS_write, sys.Args{1, 0, 8})
		_, _, err, handled = mixed.Inject(c5, sys.SYS_write, sys.Args{1, 0, 8})
		if handled {
			b.WriteString(err.Name())
		} else {
			b.WriteByte('.')
		}
	}
	if a.String() != b.String() {
		t.Fatal("pid 5's fault sequence changed when pid 9's calls were interleaved")
	}
}

func TestShortRewritesCount(t *testing.T) {
	p, err := ParsePlan("write=short:4")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(p)
	out, _, errno, handled := in.Inject(&fakeCtx{pid: 1}, sys.SYS_write, sys.Args{3, 200, 64})
	if handled || errno != sys.OK {
		t.Fatalf("short fault handled=%v err=%v", handled, errno)
	}
	if out[2] != 4 {
		t.Fatalf("count rewritten to %d, want 4", out[2])
	}
	if out[0] != 3 || out[1] != 200 {
		t.Fatalf("unrelated args disturbed: %v", out)
	}
	// A count already under the limit is left alone.
	out, _, _, _ = in.Inject(&fakeCtx{pid: 1}, sys.SYS_write, sys.Args{3, 200, 2})
	if out[2] != 2 {
		t.Fatalf("small count rewritten to %d", out[2])
	}
}

func TestPathPrefixMatching(t *testing.T) {
	p, err := ParsePlan("open:/data=EIO")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(p)
	c := &fakeCtx{pid: 1, paths: map[sys.Word]string{
		100: "/data/f", 101: "/database", 102: "/data",
	}}
	check := func(addr sys.Word, want bool) {
		t.Helper()
		_, _, _, handled := in.Inject(c, sys.SYS_open, sys.Args{addr, 0, 0})
		if handled != want {
			t.Errorf("addr %d (%q): handled=%v want %v", addr, c.paths[addr], handled, want)
		}
	}
	check(100, true)  // under the prefix
	check(101, false) // sibling that shares the byte prefix only
	check(102, true)  // the prefix itself
	// A non-path call never matches a path rule.
	if _, _, _, handled := in.Inject(c, sys.SYS_getpid, sys.Args{}); handled {
		t.Error("path rule fired on getpid")
	}
}

func TestLogAndSummary(t *testing.T) {
	p, err := ParsePlan("seed=3,write=EIO@0.5")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(p)
	c := &fakeCtx{pid: 2}
	for i := 0; i < 50; i++ {
		in.Inject(c, sys.SYS_write, sys.Args{1, 0, 8})
	}
	log := in.Log()
	if len(log) == 0 || in.Count() != len(log) {
		t.Fatalf("log len=%d count=%d", len(log), in.Count())
	}
	if !strings.Contains(log[0].String(), "pid 2 write #") {
		t.Fatalf("log line %q", log[0].String())
	}
	sum := in.Summary()
	if !strings.Contains(sum, "injected (seed=3)") || !strings.Contains(sum, "write=EIO@0.5") {
		t.Fatalf("summary %q", sum)
	}
}

func TestPathSyscallsCoverage(t *testing.T) {
	calls := PathSyscalls()
	want := map[int]bool{sys.SYS_open: true, sys.SYS_rename: true, sys.SYS_stat: true}
	for _, n := range calls {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("PathSyscalls missing %v", want)
	}
}

func TestParsePanicAndHangRules(t *testing.T) {
	p, err := ParsePlan("seed=4,write=panic@0.25,read=hang:30ms")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Call: sys.SYS_write, Effect: EffectPanic, Prob: 0.25},
		{Call: sys.SYS_read, Effect: EffectHang, Dur: 30 * time.Millisecond, Prob: 1},
	}
	for i, w := range want {
		if p.Rules[i] != w {
			t.Errorf("rule %d = %+v, want %+v", i, p.Rules[i], w)
		}
	}
	// Both render round-trippably, like every other effect.
	for _, r := range p.Rules {
		again, err := ParsePlan(r.String())
		if err != nil || again.Rules[0] != r {
			t.Errorf("round trip %q: %+v, %v", r.String(), again.Rules[0], err)
		}
	}
	for _, bad := range []string{
		"read=hang",      // missing duration
		"read=hang:",     // empty duration
		"read=hang:x",    // unparsable duration
		"read=hang:-5ms", // non-positive duration
		"read=hang:0s",   // non-positive duration
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestEffectPanicRaisesInjectedPanic(t *testing.T) {
	p, err := ParsePlan("write=panic")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(p)
	var got any
	func() {
		defer func() { got = recover() }()
		in.Inject(&fakeCtx{pid: 3}, sys.SYS_write, sys.Args{1, 0, 8})
	}()
	ip, ok := got.(*InjectedPanic)
	if !ok {
		t.Fatalf("recovered %T (%v), want *InjectedPanic", got, got)
	}
	if !strings.Contains(ip.Error(), "injected panic") || !strings.Contains(ip.Error(), "write") {
		t.Fatalf("message %q", ip.Error())
	}
	// The decision is logged before the panic, so replay records it.
	if in.Count() != 1 {
		t.Fatalf("count = %d, want 1", in.Count())
	}
}

func TestEffectHangBlocksThenEINTR(t *testing.T) {
	p, err := ParsePlan("read=hang:20ms")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(p)
	start := time.Now()
	_, _, errno, handled := in.Inject(&fakeCtx{pid: 3}, sys.SYS_read, sys.Args{0, 0, 8})
	if !handled || errno != sys.EINTR {
		t.Fatalf("hang: handled=%v err=%s", handled, errno.Name())
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("hang returned after %v, want >= 20ms", d)
	}
}
