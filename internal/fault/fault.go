// Package fault implements deterministic, seeded fault injection at the
// system interface. A Plan is a small rule language — per-syscall-number
// and per-path-prefix rules that fail a call with a given errno, truncate
// a read or write to N bytes, delay the call by simulated ticks, or
// deliver a signal to the caller mid-call, each with a probability — and
// an Injector applies a plan to a live call stream.
//
// Decisions are a pure function of (seed, pid, call number, per-(pid,call)
// sequence number, rule index): no shared random stream exists, so the
// interleaving of concurrent processes cannot perturb any one process's
// fault sequence, and the same seed with the same plan replays the same
// byte-identical fault log on a deterministic workload.
//
// The same Injector serves both surfaces: the faulty interposition agent
// (a symbolic-layer agent any stack can compose) and the kernel-side
// injector hook installed with kernel.SetInjector, which injects below all
// agents.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"interpose/internal/sys"
	"interpose/internal/telemetry"
)

// Effect is what a fired rule does to the call.
type Effect int

const (
	// EffectErrno satisfies the call immediately with the rule's errno.
	EffectErrno Effect = iota
	// EffectShort truncates a read/write count argument to N bytes and
	// lets the call proceed — a short transfer.
	EffectShort
	// EffectDelay sleeps the caller for N simulated ticks (1ms each)
	// before the call proceeds.
	EffectDelay
	// EffectSignal posts the rule's signal to the caller mid-call, then
	// lets the call proceed (typically surfacing as EINTR from sleeps).
	EffectSignal
	// EffectPanic panics inside the injection site — a deterministic
	// stand-in for a bug in agent code, for exercising the kernel's
	// supervision (panic containment and circuit breakers). Injected
	// kernel-side, below all agents, the panic is NOT supervised and
	// kills the process like any kernel bug would.
	EffectPanic
	// EffectHang blocks the call for the rule's wall-clock duration and
	// then fails it with EINTR — a stuck layer, for exercising
	// supervision deadlines. It deliberately does not proceed below
	// after the sleep: a deadline-abandoned call must not run twice.
	EffectHang
	// EffectCrash kills the whole world at this call: the crash callback
	// (OnCrash) freezes the journal at its current durable prefix and the
	// caller — along with every other process — dies with SIGKILL. The
	// call itself fails with EINTR and never reaches the kernel, exactly
	// like a machine losing power mid-syscall.
	EffectCrash
	// EffectTorn is EffectCrash with a half-written final journal sector:
	// the crash callback tears the rule's N bytes off the journal tail
	// before freezing, exercising torn-tail detection on recovery.
	EffectTorn
)

// Rule is one fault rule: a call/path filter plus an effect and its
// firing probability.
type Rule struct {
	Call   int    // syscall number, or -1 to match any pathname call
	Prefix string // pathname prefix filter; "" matches any call
	Effect Effect
	Err    sys.Errno     // EffectErrno
	N      int           // EffectShort byte limit, EffectDelay tick count
	Sig    int           // EffectSignal signal number
	Dur    time.Duration // EffectHang block duration
	Prob   float64       // firing probability in (0, 1]
}

// String renders the rule in the plan syntax it was parsed from.
func (r Rule) String() string {
	var key string
	switch {
	case r.Call >= 0 && r.Prefix != "":
		key = sys.SyscallName(r.Call) + ":" + r.Prefix
	case r.Call >= 0:
		key = sys.SyscallName(r.Call)
	default:
		key = "path:" + r.Prefix
	}
	var eff string
	switch r.Effect {
	case EffectErrno:
		eff = r.Err.Name()
	case EffectShort:
		eff = "short:" + strconv.Itoa(r.N)
	case EffectDelay:
		eff = "delay:" + strconv.Itoa(r.N)
	case EffectSignal:
		eff = "sig:" + sys.SignalName(r.Sig)
	case EffectPanic:
		eff = "panic"
	case EffectHang:
		eff = "hang:" + r.Dur.String()
	case EffectCrash:
		eff = "crash"
	case EffectTorn:
		eff = "torn:" + strconv.Itoa(r.N)
	}
	return fmt.Sprintf("%s=%s@%g", key, eff, r.Prob)
}

// Plan is a parsed fault plan: a seed and an ordered rule list. The first
// matching rule that fires wins for any given call.
type Plan struct {
	Seed  uint64
	Rules []Rule
}

// ParsePlan parses the comma-separated plan syntax:
//
//	seed=N                      decision seed (default 1)
//	CALL=EFFECT[@PROB]          rule on a syscall by name ("write=EIO@0.05")
//	CALL:/prefix=EFFECT[@PROB]  rule on a syscall limited to a path prefix
//	path:/prefix=EFFECT[@PROB]  rule on any pathname call under a prefix
//
// where EFFECT is an errno name ("EIO"), "short:N", "delay:N",
// "sig:NAME", "panic", "hang:DUR" (a Go duration, e.g. "hang:250ms"),
// "crash" (kill the world, journal frozen at its durable prefix), or
// "torn:N" (crash with N bytes torn off the journal tail), and PROB
// defaults to 1.
func ParsePlan(spec string) (*Plan, error) {
	p := &Plan{Seed: 1}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		i := strings.IndexByte(field, '=')
		if i < 0 {
			return nil, fmt.Errorf("fault: rule %q: want key=value", field)
		}
		key, val := field[:i], field[i+1:]
		if key == "seed" {
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: seed %q: %v", val, err)
			}
			p.Seed = n
			continue
		}
		r, err := parseRule(key, val)
		if err != nil {
			return nil, err
		}
		p.Rules = append(p.Rules, r)
	}
	if len(p.Rules) == 0 {
		return nil, fmt.Errorf("fault: plan %q has no rules", spec)
	}
	return p, nil
}

func parseRule(key, val string) (Rule, error) {
	r := Rule{Call: -1, Prob: 1}

	// Key: CALL, CALL:/prefix, or path:/prefix.
	name := key
	if i := strings.IndexByte(key, ':'); i >= 0 {
		name, r.Prefix = key[:i], key[i+1:]
		if !strings.HasPrefix(r.Prefix, "/") {
			return Rule{}, fmt.Errorf("fault: rule %q: prefix must be absolute", key)
		}
	}
	if name != "path" {
		num, ok := sys.SyscallByName(name)
		if !ok {
			return Rule{}, fmt.Errorf("fault: rule %q: unknown system call %q", key, name)
		}
		r.Call = num
	} else if r.Prefix == "" {
		return Rule{}, fmt.Errorf("fault: rule %q: path rule needs a prefix", key)
	}

	// Value: EFFECT[@PROB].
	eff := val
	if i := strings.LastIndexByte(val, '@'); i >= 0 {
		eff = val[:i]
		prob, err := strconv.ParseFloat(val[i+1:], 64)
		if err != nil || prob <= 0 || prob > 1 {
			return Rule{}, fmt.Errorf("fault: rule %s=%s: probability must be in (0,1]", key, val)
		}
		r.Prob = prob
	}
	switch {
	case strings.HasPrefix(eff, "short:"):
		n, err := strconv.Atoi(eff[len("short:"):])
		if err != nil || n < 0 {
			return Rule{}, fmt.Errorf("fault: rule %s=%s: bad short count", key, val)
		}
		r.Effect, r.N = EffectShort, n
		if r.Call != sys.SYS_read && r.Call != sys.SYS_write {
			return Rule{}, fmt.Errorf("fault: rule %s=%s: short applies to read/write only", key, val)
		}
	case strings.HasPrefix(eff, "delay:"):
		n, err := strconv.Atoi(eff[len("delay:"):])
		if err != nil || n < 0 {
			return Rule{}, fmt.Errorf("fault: rule %s=%s: bad delay count", key, val)
		}
		r.Effect, r.N = EffectDelay, n
	case strings.HasPrefix(eff, "sig:"):
		sig, ok := signalByName(eff[len("sig:"):])
		if !ok {
			return Rule{}, fmt.Errorf("fault: rule %s=%s: unknown signal", key, val)
		}
		r.Effect, r.Sig = EffectSignal, sig
	case eff == "panic":
		r.Effect = EffectPanic
	case eff == "crash":
		r.Effect = EffectCrash
	case strings.HasPrefix(eff, "torn:"):
		n, err := strconv.Atoi(eff[len("torn:"):])
		if err != nil || n <= 0 {
			return Rule{}, fmt.Errorf("fault: rule %s=%s: bad torn byte count", key, val)
		}
		r.Effect, r.N = EffectTorn, n
	case strings.HasPrefix(eff, "hang:"):
		d, err := time.ParseDuration(eff[len("hang:"):])
		if err != nil || d <= 0 {
			return Rule{}, fmt.Errorf("fault: rule %s=%s: bad hang duration", key, val)
		}
		r.Effect, r.Dur = EffectHang, d
	default:
		errno, ok := sys.ErrnoByName(eff)
		if !ok {
			return Rule{}, fmt.Errorf("fault: rule %s=%s: unknown effect %q", key, val, eff)
		}
		r.Effect, r.Err = EffectErrno, errno
	}
	return r, nil
}

// signalByName resolves "SIGINT" or "INT" to a signal number.
func signalByName(name string) (int, bool) {
	for s := 1; s < sys.NSIG; s++ {
		n := sys.SignalName(s)
		if n == name || strings.TrimPrefix(n, "SIG") == name {
			return s, true
		}
	}
	return 0, false
}

// pathArgMask maps a syscall number to a bitmask of argument positions
// holding pathname pointers, for path-prefix rule matching.
var pathArgMask = func() [sys.MaxSyscall]uint8 {
	var m [sys.MaxSyscall]uint8
	for _, num := range []int{
		sys.SYS_open, sys.SYS_creat, sys.SYS_unlink, sys.SYS_chdir,
		sys.SYS_mknod, sys.SYS_chmod, sys.SYS_chown, sys.SYS_access,
		sys.SYS_stat, sys.SYS_lstat, sys.SYS_readlink, sys.SYS_execve,
		sys.SYS_chroot, sys.SYS_truncate, sys.SYS_mkdir, sys.SYS_rmdir,
		sys.SYS_utimes,
	} {
		m[num] = 1 << 0
	}
	m[sys.SYS_link] = 1<<0 | 1<<1
	m[sys.SYS_rename] = 1<<0 | 1<<1
	m[sys.SYS_symlink] = 1 << 1 // the created name; arg 0 is the target text
	return m
}()

// PathSyscalls returns the call numbers that carry a pathname argument —
// the interest set of a path-only rule.
func PathSyscalls() []int {
	var out []int
	for n, m := range pathArgMask {
		if m != 0 {
			out = append(out, n)
		}
	}
	return out
}

// Record is one injected fault, for logs and replay verification.
type Record struct {
	PID  int
	Call int
	Seq  uint64 // per-(pid,call) decision sequence number
	Rule int    // index into the plan's rule list
	Desc string // rendered rule, e.g. "write=EIO@0.05"
}

// String renders the record as one stable log line.
func (r Record) String() string {
	return fmt.Sprintf("pid %d %s #%d: %s", r.PID, sys.SyscallName(r.Call), r.Seq, r.Desc)
}

// Injector applies a plan to a live system call stream.
type Injector struct {
	plan *Plan

	// onCrash, when set, is fired exactly once by the first crash/torn
	// rule that triggers: it receives the torn byte count (0 for a clean
	// crash) and is expected to freeze the journal store and kill the
	// world (kernel.Crash).
	onCrash func(torn int)

	mu      sync.Mutex
	seq     map[seqKey]uint64
	log     []Record
	crashed bool
}

type seqKey struct{ pid, call int }

// NewInjector creates an injector for a parsed plan.
func NewInjector(p *Plan) *Injector {
	return &Injector{plan: p, seq: make(map[seqKey]uint64)}
}

// Plan returns the injector's plan (for interest registration).
func (in *Injector) Plan() *Plan { return in.plan }

// OnCrash installs the world-killing callback fired by crash/torn rules.
// Install it before the first process runs; an injector with crash rules
// but no callback fails the call with EINTR and otherwise does nothing.
func (in *Injector) OnCrash(fn func(torn int)) { in.onCrash = fn }

// Crashed reports whether a crash/torn rule has fired. Test harnesses
// use it to tell an injected world-kill from an organic failure and dump
// artifacts accordingly.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// Log returns a copy of the injected-fault log in injection order.
func (in *Injector) Log() []Record {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Record, len(in.log))
	copy(out, in.log)
	return out
}

// Count returns the number of faults injected so far.
func (in *Injector) Count() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.log)
}

// Summary renders per-rule injection counts, one line per rule.
func (in *Injector) Summary() string {
	counts := make(map[int]int)
	in.mu.Lock()
	for _, r := range in.log {
		counts[r.Rule]++
	}
	total := len(in.log)
	in.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "fault: %d injected (seed=%d)\n", total, in.plan.Seed)
	idxs := make([]int, 0, len(counts))
	for i := range counts {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		fmt.Fprintf(&b, "fault:   %6d × %s\n", counts[i], in.plan.Rules[i])
	}
	return b.String()
}

// InjectedPanic is the value a panic rule throws. The kernel's
// supervisor (when installed) contains it like any agent bug; the
// record identifies which decision fired, so contained-panic logs line
// up with the injector's own log under replay.
type InjectedPanic struct{ Record Record }

func (p *InjectedPanic) Error() string { return p.String() }

func (p *InjectedPanic) String() string {
	return "fault: injected panic: " + p.Record.String()
}

// splitmix64 is the decision hash: a well-mixed 64-bit permutation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// decide reports whether rule idx fires for the seq'th decision of
// (pid, call). It is a pure function, so replay is exact regardless of
// scheduling.
func (in *Injector) decide(pid, call int, seq uint64, idx int) bool {
	h := splitmix64(in.plan.Seed ^ splitmix64(uint64(pid)<<32|uint64(uint32(call))) ^
		splitmix64(seq*0x2545f4914f6cdd1d+uint64(idx)))
	p := float64(h>>11) / (1 << 53)
	return p < in.plan.Rules[idx].Prob
}

// matches reports whether the rule's call/path filter accepts this call.
func (in *Injector) matches(c sys.Ctx, r Rule, num int, a sys.Args) bool {
	if r.Call >= 0 && r.Call != num {
		return false
	}
	if r.Prefix == "" {
		return r.Call >= 0
	}
	mask := uint8(0)
	if num >= 0 && num < sys.MaxSyscall {
		mask = pathArgMask[num]
	}
	if mask == 0 {
		return false
	}
	for bit := 0; bit < 2; bit++ {
		if mask&(1<<bit) == 0 {
			continue
		}
		path, err := c.CopyInString(a[bit], sys.PathMax)
		if err != sys.OK {
			continue
		}
		if path == r.Prefix || strings.HasPrefix(path, r.Prefix+"/") {
			return true
		}
	}
	return false
}

// telemetried is the capability of contexts that can reach the telemetry
// registry (kernel process contexts implement it).
type telemetried interface {
	Telemetry() *telemetry.Registry
}

// killer is the capability of posting a signal through the lowest instance
// of the system interface, for EffectSignal.
type killer interface {
	KernelSyscall(num int, a sys.Args) (sys.Retval, sys.Errno)
}

// Inject consults the plan for one system call. It returns the (possibly
// rewritten) arguments and, when handled is true, the result the call
// should return without reaching the instance below. When handled is
// false the call proceeds with the returned arguments.
func (in *Injector) Inject(c sys.Ctx, num int, a sys.Args) (out sys.Args, rv sys.Retval, err sys.Errno, handled bool) {
	out = a
	pid := c.PID()
	key := seqKey{pid, num}
	in.mu.Lock()
	seq := in.seq[key]
	in.seq[key] = seq + 1
	in.mu.Unlock()

	for idx, r := range in.plan.Rules {
		if !in.matches(c, r, num, a) {
			continue
		}
		if !in.decide(pid, num, seq, idx) {
			continue
		}
		rec := Record{PID: pid, Call: num, Seq: seq, Rule: idx, Desc: r.String()}
		in.mu.Lock()
		in.log = append(in.log, rec)
		in.mu.Unlock()

		switch r.Effect {
		case EffectErrno:
			in.note(c, num, rec, r.Err)
			return out, sys.Retval{}, r.Err, true
		case EffectPanic:
			in.note(c, num, rec, sys.EFAULT)
			panic(&InjectedPanic{Record: rec})
		case EffectHang:
			in.note(c, num, rec, sys.EINTR)
			time.Sleep(r.Dur)
			return out, sys.Retval{}, sys.EINTR, true
		case EffectCrash, EffectTorn:
			// Only the first crash fires: the world is already dying, and
			// a second Freeze/Crash from a racing process must not tear
			// the journal again.
			in.mu.Lock()
			first := !in.crashed
			in.crashed = true
			in.mu.Unlock()
			in.note(c, num, rec, sys.EINTR)
			if first && in.onCrash != nil {
				torn := 0
				if r.Effect == EffectTorn {
					torn = r.N
				}
				in.onCrash(torn)
			}
			// The dying caller sees EINTR; SIGKILL is already pending and
			// is delivered at syscall exit.
			return out, sys.Retval{}, sys.EINTR, true
		case EffectShort:
			if out[2] > sys.Word(r.N) {
				out[2] = sys.Word(r.N)
			}
			in.note(c, num, rec, sys.OK)
		case EffectDelay:
			in.note(c, num, rec, sys.OK)
			time.Sleep(time.Duration(r.N) * time.Millisecond)
		case EffectSignal:
			in.note(c, num, rec, sys.OK)
			if k, ok := c.(killer); ok {
				k.KernelSyscall(sys.SYS_kill, sys.Args{sys.Word(pid), sys.Word(r.Sig)})
			}
		}
		// Non-errno effects let the call proceed; one fired rule per call.
		return out, sys.Retval{}, sys.OK, false
	}
	return out, sys.Retval{}, sys.OK, false
}

// note counts the injection in telemetry and drops a flight-ring event, if
// a registry is reachable through the context.
func (in *Injector) note(c sys.Ctx, num int, rec Record, errno sys.Errno) {
	tp, ok := c.(telemetried)
	if !ok {
		return
	}
	r := tp.Telemetry()
	if r == nil {
		return
	}
	r.Counter("fault.injected").Add(1)
	r.Counter("fault." + sys.SyscallName(num)).Add(1)
	r.RecordFileEvent(rec.PID, "fault:"+rec.Desc, "", "", -1, int32(errno))
}
