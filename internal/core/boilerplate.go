package core

import (
	"fmt"
	"strings"

	"interpose/internal/image"
	"interpose/internal/kernel"
	"interpose/internal/sys"
)

// Agent is a complete, installable interposition agent: an instance of the
// system interface (sys.Handler) that also enumerates the system calls and
// signals it wants intercepted. Concrete agents embed one of the toolkit
// layer bases (Numeric, Symbolic, DescriptorSet, PathnameSet), which
// provide the bookkeeping half of this interface.
type Agent interface {
	sys.Handler
	// InterestedSyscalls reports the registered system call numbers, or
	// all=true for blanket interest.
	InterestedSyscalls() (nums []int, all bool)
	// InterestedSignals reports the registered signal mask, or all=true.
	InterestedSignals() (mask uint32, all bool)
}

// Downer is the downcall capability of an agent's call context: invoking
// the next-lower instance of the system interface even for numbers the
// agent itself intercepts — the htg_unix_syscall analog. The kernel's
// per-layer contexts implement it.
type Downer interface {
	Down(num int, a sys.Args) (sys.Retval, sys.Errno)
}

// Down invokes the next-lower instance of the system interface below the
// agent owning ctx.
func Down(c sys.Ctx, num int, a sys.Args) (sys.Retval, sys.Errno) {
	d, ok := c.(Downer)
	if !ok {
		return sys.Retval{}, sys.ENOSYS
	}
	return d.Down(num, a)
}

// emuStager is the agent-scratch capability of a call context: staging
// bytes in the client's address space (agents logically live there).
type emuStager interface {
	EmuString(s string) (sys.Word, sys.Errno)
	EmuBytes(b []byte) (sys.Word, sys.Errno)
	EmuAlloc(n int) (sys.Word, sys.Errno)
}

// StageString places s in the client's address space for the duration of
// the current system call, returning its address.
func StageString(c sys.Ctx, s string) (sys.Word, sys.Errno) {
	es, ok := c.(emuStager)
	if !ok {
		return 0, sys.ENOSYS
	}
	return es.EmuString(s)
}

// StageBytes places b in the client's address space for the duration of
// the current system call.
func StageBytes(c sys.Ctx, b []byte) (sys.Word, sys.Errno) {
	es, ok := c.(emuStager)
	if !ok {
		return 0, sys.ENOSYS
	}
	return es.EmuBytes(b)
}

// StageAlloc reserves n bytes in the client's address space for the
// duration of the current system call (for downcall out-parameters).
func StageAlloc(c sys.Ctx, n int) (sys.Word, sys.Errno) {
	es, ok := c.(emuStager)
	if !ok {
		return 0, sys.ENOSYS
	}
	return es.EmuAlloc(n)
}

// stageMarker is the bulk save/restore capability of the agent scratch
// area, for loops that stage many buffers within one system call.
type stageMarker interface {
	EmuMark() sys.Word
	EmuRelease(mark sys.Word)
}

// StageMark saves the scratch allocation point.
func StageMark(c sys.Ctx) sys.Word {
	if m, ok := c.(stageMarker); ok {
		return m.EmuMark()
	}
	return 0
}

// StageRelease rewinds scratch allocation to a saved point.
func StageRelease(c sys.Ctx, mark sys.Word) {
	if m, ok := c.(stageMarker); ok {
		m.EmuRelease(mark)
	}
}

// DownPath performs a downcall whose first argument is a pathname string,
// staging the (possibly agent-rewritten) path in the client's address
// space first.
func DownPath(c sys.Ctx, num int, path string, rest ...sys.Word) (sys.Retval, sys.Errno) {
	addr, err := StageString(c, path)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	a := sys.Args{addr}
	copy(a[1:], rest)
	return Down(c, num, a)
}

// DownPath2 performs a downcall with pathname strings in the first two
// argument positions (link, rename, symlink).
func DownPath2(c sys.Ctx, num int, p1, p2 string, rest ...sys.Word) (sys.Retval, sys.Errno) {
	a1, err := StageString(c, p1)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	a2, err := StageString(c, p2)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	a := sys.Args{a1, a2}
	copy(a[2:], rest)
	return Down(c, num, a)
}

// DownWriteString writes s to descriptor fd of the client through a
// downcall, staging the bytes in the client's address space first. Agents
// use it to emit output (trace logs, reports) as real write system calls —
// the cost the paper attributes to the trace agent.
func DownWriteString(c sys.Ctx, fd int, s string) sys.Errno {
	if s == "" {
		return sys.OK
	}
	addr, err := StageBytes(c, []byte(s))
	if err != sys.OK {
		return err
	}
	remaining := sys.Word(len(s))
	for remaining > 0 {
		rv, err := Down(c, sys.SYS_write, sys.Args{sys.Word(fd), addr, remaining})
		if err != sys.OK {
			return err
		}
		addr += rv[0]
		remaining -= rv[0]
	}
	return sys.OK
}

// Install attaches an agent to a process as its topmost emulation layer.
// The agent sees the process's registered system calls before lower
// layers and the kernel, and its registered signals after them. The layer
// is inherited by the process's future children. The returned layer
// handle can be passed to kernel.Proc.RemoveEmulation (or the agent
// itself to Uninstall) to detach it again.
func Install(p *kernel.Proc, a Agent) *kernel.EmuLayer {
	layer := kernel.NewEmuLayer(a)
	layer.Name = agentName(a)
	nums, all := a.InterestedSyscalls()
	if all {
		layer.RegisterAll()
	}
	for _, n := range nums {
		layer.Register(n)
	}
	if si, ok := a.(sys.SignalInterposer); ok {
		layer.Signals = si
		mask, sall := a.InterestedSignals()
		if sall {
			layer.RegisterAllSignals()
		}
		for s := 1; s < sys.NSIG; s++ {
			if mask&sys.SigMask(s) != 0 {
				layer.RegisterSignal(s)
			}
		}
	}
	p.PushEmulation(layer)
	return layer
}

// Uninstall detaches the topmost layer running agent a from p, reporting
// whether one was installed. The process's dispatch plan is recompiled
// atomically: the next system call entry no longer consults the agent,
// and calls for numbers only a intercepted return to the uninterposed
// fast path.
func Uninstall(p *kernel.Proc, a Agent) bool {
	layers := p.Emulation()
	for i := len(layers) - 1; i >= 0; i-- {
		if layers[i].Handler == sys.Handler(a) {
			return p.RemoveEmulation(layers[i])
		}
	}
	return false
}

// agentName derives the short name telemetry uses to label an agent's
// layer: the agent's own AgentName when it provides one, otherwise the
// package name of its concrete type (e.g. *trace.Agent -> "trace").
func agentName(a Agent) string {
	if n, ok := a.(interface{ AgentName() string }); ok {
		return n.AgentName()
	}
	t := strings.TrimPrefix(fmt.Sprintf("%T", a), "*")
	if i := strings.IndexByte(t, '.'); i >= 0 {
		t = t[:i]
	}
	return t
}

// Launch is the general agent loader: it creates a process whose standard
// descriptors are on the console, installs the given agents bottom-up
// (the first agent listed is closest to the kernel), and starts the
// program image at path. This is the toolkit analog of the paper's agent
// loader program.
func Launch(k *kernel.Kernel, agents []Agent, path string, argv, envp []string) (*kernel.Proc, error) {
	p := k.NewProc()
	if err := p.OpenConsole(); err != nil {
		return nil, fmt.Errorf("core: launch: console: %w", err)
	}
	for _, a := range agents {
		Install(p, a)
	}
	if err := p.Start(path, argv, envp); err != nil {
		return nil, fmt.Errorf("core: launch: %w", err)
	}
	return p, nil
}

// Run launches a program under agents and waits for it, returning its wait
// status and the console output produced during the run.
func Run(k *kernel.Kernel, agents []Agent, path string, argv, envp []string) (sys.Word, string, error) {
	k.Console().TakeOutput()
	p, err := Launch(k, agents, path, argv, envp)
	if err != nil {
		return 0, "", err
	}
	status := k.WaitExit(p)
	return status, k.Console().TakeOutput(), nil
}

// execProc is the machine-level capability set needed by the toolkit's
// execve reimplementation.
type execProc interface {
	Downer
	emuStager
	ResetAS()
	Exec(entry image.Entry)
	SetInitialSP(sp sys.Word)
	SetComm(name string)
	LookupImage(name string) (image.Entry, bool)
	sys.Ctx
}
