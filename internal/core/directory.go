package core

import "interpose/internal/sys"

// DirectoryHandler is the overridable iteration interface of a Directory
// open object. The NextDirentry hook encapsulates the iteration of
// individual directory entries implicit in reading a directory's contents;
// supplying a new NextDirentry changes the directory's logical contents
// (this is how the union agent merges member directories).
type DirectoryHandler interface {
	// NextDirentry produces the next logical entry through descriptor fd;
	// ok is false at the end of the directory.
	NextDirentry(c sys.Ctx, fd int) (d sys.Dirent, ok bool, err sys.Errno)
	// Rewind restarts iteration from the beginning.
	Rewind(c sys.Ctx, fd int) sys.Errno
}

// Directory is the toolkit open object for directories: a derived open
// object whose getdirentries is synthesized from the NextDirentry hook.
// The default iteration reads the underlying descriptor's entries, so a
// plain Directory behaves exactly like the directory it wraps.
type Directory struct {
	BaseOpenObject
	dself DirectoryHandler

	pending []sys.Dirent // entries read ahead from below
	emitted int          // logical offset (entries already returned)
}

// NewDirectory returns a Directory over the underlying descriptor fd.
// The caller must BindDirectory the outermost object.
func NewDirectory(fd int) *Directory {
	d := &Directory{BaseOpenObject: BaseOpenObject{FD: fd, refs: 1}}
	d.dself = d
	return d
}

// BindDirectory wires the outermost directory object into the iteration
// path.
func (d *Directory) BindDirectory(self DirectoryHandler) { d.dself = self }

// NextDirentry reads the next entry from the underlying descriptor,
// buffering a block at a time.
func (d *Directory) NextDirentry(c sys.Ctx, fd int) (sys.Dirent, bool, sys.Errno) {
	if len(d.pending) == 0 {
		const block = 4096
		bufAddr, err := StageAlloc(c, block)
		if err != sys.OK {
			return sys.Dirent{}, false, err
		}
		rv, err := d.BaseOpenObject.Getdirentries(c, fd, bufAddr, block, 0)
		if err != sys.OK {
			return sys.Dirent{}, false, err
		}
		n := int(rv[0])
		if n == 0 {
			return sys.Dirent{}, false, sys.OK
		}
		raw := make([]byte, n)
		if e := c.CopyIn(bufAddr, raw); e != sys.OK {
			return sys.Dirent{}, false, e
		}
		d.pending = sys.DecodeDirents(raw)
		if len(d.pending) == 0 {
			return sys.Dirent{}, false, sys.OK
		}
	}
	ent := d.pending[0]
	d.pending = d.pending[1:]
	return ent, true, sys.OK
}

// Rewind restarts the underlying directory.
func (d *Directory) Rewind(c sys.Ctx, fd int) sys.Errno {
	d.pending = nil
	d.emitted = 0
	_, err := d.BaseOpenObject.Lseek(c, fd, 0, sys.SEEK_SET)
	return err
}

// Getdirentries synthesizes the getdirentries result from the (possibly
// overridden) NextDirentry hook: it packs logical entries into the
// caller's buffer until one no longer fits.
func (d *Directory) Getdirentries(c sys.Ctx, fd int, buf sys.Word, nbytes int, basep sys.Word) (sys.Retval, sys.Errno) {
	base := d.emitted
	var out []byte
	for {
		if len(out)+sys.DirentRecLen("") > nbytes {
			break
		}
		ent, ok, err := d.dself.NextDirentry(c, fd)
		if err != sys.OK {
			return sys.Retval{}, err
		}
		if !ok {
			break
		}
		rl := sys.DirentRecLen(ent.Name)
		if len(out)+rl > nbytes {
			// Push back for the next call.
			d.pending = append([]sys.Dirent{ent}, d.pending...)
			break
		}
		out = sys.EncodeDirent(out, ent)
		d.emitted++
	}
	if len(out) > 0 {
		if e := c.CopyOut(buf, out); e != sys.OK {
			return sys.Retval{}, e
		}
	}
	if basep != 0 {
		b := [4]byte{byte(base), byte(base >> 8), byte(base >> 16), byte(base >> 24)}
		if e := c.CopyOut(basep, b[:]); e != sys.OK {
			return sys.Retval{}, e
		}
	}
	return sys.Retval{sys.Word(len(out))}, sys.OK
}

// Lseek supports rewinding the logical directory; other seeks on a
// synthesized directory are refused.
func (d *Directory) Lseek(c sys.Ctx, fd int, off int32, whence int) (sys.Retval, sys.Errno) {
	if off == 0 && whence == sys.SEEK_SET {
		d.emitted = 0
		if err := d.dself.Rewind(c, fd); err != sys.OK {
			return sys.Retval{}, err
		}
		return sys.Retval{0}, sys.OK
	}
	return sys.Retval{}, sys.ESPIPE
}

var (
	_ OpenObject       = (*Directory)(nil)
	_ DirectoryHandler = (*Directory)(nil)
)
