package core

import "interpose/internal/sys"

// SymbolicHandler is the full symbolic system call interface: one typed
// method per 4.3BSD system call, plus the incoming-signal upcall and the
// catch-all for unknown numbers. The Symbolic layer decodes each
// intercepted call and invokes the corresponding method on the outermost
// agent object (the one passed to Bind).
//
// Pointer-valued arguments that the toolkit does not interpret (I/O
// buffers, struct out-parameters) remain raw sys.Word addresses in the
// client's address space; pathname arguments are decoded to strings.
type SymbolicHandler interface {
	SysExit(c sys.Ctx, status int) (sys.Retval, sys.Errno)
	SysFork(c sys.Ctx) (sys.Retval, sys.Errno)
	SysRead(c sys.Ctx, fd int, buf sys.Word, cnt int) (sys.Retval, sys.Errno)
	SysWrite(c sys.Ctx, fd int, buf sys.Word, cnt int) (sys.Retval, sys.Errno)
	SysOpen(c sys.Ctx, path string, flags int, mode uint32) (sys.Retval, sys.Errno)
	SysClose(c sys.Ctx, fd int) (sys.Retval, sys.Errno)
	SysWait4(c sys.Ctx, pid int, statusAddr sys.Word, options int, ruAddr sys.Word) (sys.Retval, sys.Errno)
	SysCreat(c sys.Ctx, path string, mode uint32) (sys.Retval, sys.Errno)
	SysLink(c sys.Ctx, path, newPath string) (sys.Retval, sys.Errno)
	SysUnlink(c sys.Ctx, path string) (sys.Retval, sys.Errno)
	SysChdir(c sys.Ctx, path string) (sys.Retval, sys.Errno)
	SysFchdir(c sys.Ctx, fd int) (sys.Retval, sys.Errno)
	SysMknod(c sys.Ctx, path string, mode uint32, dev sys.Word) (sys.Retval, sys.Errno)
	SysChmod(c sys.Ctx, path string, mode uint32) (sys.Retval, sys.Errno)
	SysChown(c sys.Ctx, path string, uid, gid sys.Word) (sys.Retval, sys.Errno)
	SysBrk(c sys.Ctx, addr sys.Word) (sys.Retval, sys.Errno)
	SysLseek(c sys.Ctx, fd int, off int32, whence int) (sys.Retval, sys.Errno)
	SysGetpid(c sys.Ctx) (sys.Retval, sys.Errno)
	SysSetuid(c sys.Ctx, uid sys.Word) (sys.Retval, sys.Errno)
	SysGetuid(c sys.Ctx) (sys.Retval, sys.Errno)
	SysGeteuid(c sys.Ctx) (sys.Retval, sys.Errno)
	SysAccess(c sys.Ctx, path string, mode int) (sys.Retval, sys.Errno)
	SysSync(c sys.Ctx) (sys.Retval, sys.Errno)
	SysKill(c sys.Ctx, pid, sig int) (sys.Retval, sys.Errno)
	SysStat(c sys.Ctx, path string, statAddr sys.Word) (sys.Retval, sys.Errno)
	SysGetppid(c sys.Ctx) (sys.Retval, sys.Errno)
	SysLstat(c sys.Ctx, path string, statAddr sys.Word) (sys.Retval, sys.Errno)
	SysDup(c sys.Ctx, fd int) (sys.Retval, sys.Errno)
	SysPipe(c sys.Ctx) (sys.Retval, sys.Errno)
	SysGetegid(c sys.Ctx) (sys.Retval, sys.Errno)
	SysGetgid(c sys.Ctx) (sys.Retval, sys.Errno)
	SysIoctl(c sys.Ctx, fd int, req, arg sys.Word) (sys.Retval, sys.Errno)
	SysSymlink(c sys.Ctx, target, linkPath string) (sys.Retval, sys.Errno)
	SysReadlink(c sys.Ctx, path string, buf sys.Word, n int) (sys.Retval, sys.Errno)
	SysExecve(c sys.Ctx, path string, argvAddr, envpAddr sys.Word) (sys.Retval, sys.Errno)
	SysUmask(c sys.Ctx, mask uint32) (sys.Retval, sys.Errno)
	SysChroot(c sys.Ctx, path string) (sys.Retval, sys.Errno)
	SysFstat(c sys.Ctx, fd int, statAddr sys.Word) (sys.Retval, sys.Errno)
	SysGetpagesize(c sys.Ctx) (sys.Retval, sys.Errno)
	SysGetgroups(c sys.Ctx, n int, addr sys.Word) (sys.Retval, sys.Errno)
	SysSetgroups(c sys.Ctx, n int, addr sys.Word) (sys.Retval, sys.Errno)
	SysGetpgrp(c sys.Ctx, pid int) (sys.Retval, sys.Errno)
	SysSetpgrp(c sys.Ctx, pid, pgrp int) (sys.Retval, sys.Errno)
	SysGethostname(c sys.Ctx, addr sys.Word, n int) (sys.Retval, sys.Errno)
	SysSethostname(c sys.Ctx, addr sys.Word, n int) (sys.Retval, sys.Errno)
	SysGetdtablesize(c sys.Ctx) (sys.Retval, sys.Errno)
	SysDup2(c sys.Ctx, oldfd, newfd int) (sys.Retval, sys.Errno)
	SysFcntl(c sys.Ctx, fd, cmd int, arg sys.Word) (sys.Retval, sys.Errno)
	SysFsync(c sys.Ctx, fd int) (sys.Retval, sys.Errno)
	SysSigvec(c sys.Ctx, sig int, nsv, osv sys.Word) (sys.Retval, sys.Errno)
	SysSigblock(c sys.Ctx, mask uint32) (sys.Retval, sys.Errno)
	SysSigsetmask(c sys.Ctx, mask uint32) (sys.Retval, sys.Errno)
	SysSigpause(c sys.Ctx, mask uint32) (sys.Retval, sys.Errno)
	SysGettimeofday(c sys.Ctx, tv, tz sys.Word) (sys.Retval, sys.Errno)
	SysGetrusage(c sys.Ctx, who, ru sys.Word) (sys.Retval, sys.Errno)
	SysSettimeofday(c sys.Ctx, tv, tz sys.Word) (sys.Retval, sys.Errno)
	SysRename(c sys.Ctx, from, to string) (sys.Retval, sys.Errno)
	SysTruncate(c sys.Ctx, path string, length int32) (sys.Retval, sys.Errno)
	SysFtruncate(c sys.Ctx, fd int, length int32) (sys.Retval, sys.Errno)
	SysFlock(c sys.Ctx, fd, op int) (sys.Retval, sys.Errno)
	SysMkdir(c sys.Ctx, path string, mode uint32) (sys.Retval, sys.Errno)
	SysRmdir(c sys.Ctx, path string) (sys.Retval, sys.Errno)
	SysUtimes(c sys.Ctx, path string, tvAddr sys.Word) (sys.Retval, sys.Errno)
	SysSetsid(c sys.Ctx) (sys.Retval, sys.Errno)
	SysGetrlimit(c sys.Ctx, res int, addr sys.Word) (sys.Retval, sys.Errno)
	SysSetrlimit(c sys.Ctx, res int, addr sys.Word) (sys.Retval, sys.Errno)
	SysGetdirentries(c sys.Ctx, fd int, buf sys.Word, nbytes int, basep sys.Word) (sys.Retval, sys.Errno)

	// UnknownSyscall handles numbers outside the implemented interface.
	UnknownSyscall(c sys.Ctx, num int, a sys.Args) (sys.Retval, sys.Errno)

	// SignalUp is the incoming-signal upcall: it returns the signal to
	// deliver onward (0 to suppress).
	SignalUp(c sys.Ctx, sig, code int) int
}

// Symbolic is the symbolic system call layer base. Agents embed it,
// register the calls they want, Bind the outermost object, and override
// the methods corresponding to the new functionality; everything else
// inherits the default action.
type Symbolic struct {
	Numeric
	self SymbolicHandler
}

// Bind wires the outermost agent object into the dispatch path. It must be
// called before the agent is installed (typically in the constructor).
func (s *Symbolic) Bind(self SymbolicHandler) { s.self = self }

// Self returns the outermost agent object.
func (s *Symbolic) Self() SymbolicHandler { return s.self }

// readPath decodes a pathname argument.
func readPath(c sys.Ctx, addr sys.Word) (string, sys.Errno) {
	return c.CopyInString(addr, sys.PathMax-1)
}

// Syscall implements sys.Handler: it decodes the numeric call into an
// invocation of the corresponding symbolic method on the bound agent.
// (This mapping is the toolkit-supplied derived numeric_syscall object of
// the paper.)
func (s *Symbolic) Syscall(c sys.Ctx, num int, a sys.Args) (sys.Retval, sys.Errno) {
	h := s.self
	if h == nil {
		return Down(c, num, a)
	}
	// Pathname-argument decode, shared by the path-taking cases.
	path := func(i int) (string, sys.Errno) { return readPath(c, a[i]) }

	switch num {
	case sys.SYS_exit:
		return h.SysExit(c, int(a[0]))
	case sys.SYS_fork:
		return h.SysFork(c)
	case sys.SYS_read:
		return h.SysRead(c, int(a[0]), a[1], int(a[2]))
	case sys.SYS_write:
		return h.SysWrite(c, int(a[0]), a[1], int(a[2]))
	case sys.SYS_open:
		p, e := path(0)
		if e != sys.OK {
			return sys.Retval{}, e
		}
		return h.SysOpen(c, p, int(a[1]), a[2])
	case sys.SYS_close:
		return h.SysClose(c, int(a[0]))
	case sys.SYS_wait4:
		return h.SysWait4(c, int(int32(a[0])), a[1], int(a[2]), a[3])
	case sys.SYS_creat:
		p, e := path(0)
		if e != sys.OK {
			return sys.Retval{}, e
		}
		return h.SysCreat(c, p, a[1])
	case sys.SYS_link:
		p1, e := path(0)
		if e != sys.OK {
			return sys.Retval{}, e
		}
		p2, e := path(1)
		if e != sys.OK {
			return sys.Retval{}, e
		}
		return h.SysLink(c, p1, p2)
	case sys.SYS_unlink:
		p, e := path(0)
		if e != sys.OK {
			return sys.Retval{}, e
		}
		return h.SysUnlink(c, p)
	case sys.SYS_chdir:
		p, e := path(0)
		if e != sys.OK {
			return sys.Retval{}, e
		}
		return h.SysChdir(c, p)
	case sys.SYS_fchdir:
		return h.SysFchdir(c, int(a[0]))
	case sys.SYS_mknod:
		p, e := path(0)
		if e != sys.OK {
			return sys.Retval{}, e
		}
		return h.SysMknod(c, p, a[1], a[2])
	case sys.SYS_chmod:
		p, e := path(0)
		if e != sys.OK {
			return sys.Retval{}, e
		}
		return h.SysChmod(c, p, a[1])
	case sys.SYS_chown:
		p, e := path(0)
		if e != sys.OK {
			return sys.Retval{}, e
		}
		return h.SysChown(c, p, a[1], a[2])
	case sys.SYS_brk:
		return h.SysBrk(c, a[0])
	case sys.SYS_lseek:
		return h.SysLseek(c, int(a[0]), int32(a[1]), int(a[2]))
	case sys.SYS_getpid:
		return h.SysGetpid(c)
	case sys.SYS_setuid:
		return h.SysSetuid(c, a[0])
	case sys.SYS_getuid:
		return h.SysGetuid(c)
	case sys.SYS_geteuid:
		return h.SysGeteuid(c)
	case sys.SYS_access:
		p, e := path(0)
		if e != sys.OK {
			return sys.Retval{}, e
		}
		return h.SysAccess(c, p, int(a[1]))
	case sys.SYS_sync:
		return h.SysSync(c)
	case sys.SYS_kill:
		return h.SysKill(c, int(int32(a[0])), int(a[1]))
	case sys.SYS_stat:
		p, e := path(0)
		if e != sys.OK {
			return sys.Retval{}, e
		}
		return h.SysStat(c, p, a[1])
	case sys.SYS_getppid:
		return h.SysGetppid(c)
	case sys.SYS_lstat:
		p, e := path(0)
		if e != sys.OK {
			return sys.Retval{}, e
		}
		return h.SysLstat(c, p, a[1])
	case sys.SYS_dup:
		return h.SysDup(c, int(a[0]))
	case sys.SYS_pipe:
		return h.SysPipe(c)
	case sys.SYS_getegid:
		return h.SysGetegid(c)
	case sys.SYS_getgid:
		return h.SysGetgid(c)
	case sys.SYS_ioctl:
		return h.SysIoctl(c, int(a[0]), a[1], a[2])
	case sys.SYS_symlink:
		p1, e := path(0)
		if e != sys.OK {
			return sys.Retval{}, e
		}
		p2, e := path(1)
		if e != sys.OK {
			return sys.Retval{}, e
		}
		return h.SysSymlink(c, p1, p2)
	case sys.SYS_readlink:
		p, e := path(0)
		if e != sys.OK {
			return sys.Retval{}, e
		}
		return h.SysReadlink(c, p, a[1], int(a[2]))
	case sys.SYS_execve:
		p, e := path(0)
		if e != sys.OK {
			return sys.Retval{}, e
		}
		return h.SysExecve(c, p, a[1], a[2])
	case sys.SYS_umask:
		return h.SysUmask(c, a[0])
	case sys.SYS_chroot:
		p, e := path(0)
		if e != sys.OK {
			return sys.Retval{}, e
		}
		return h.SysChroot(c, p)
	case sys.SYS_fstat:
		return h.SysFstat(c, int(a[0]), a[1])
	case sys.SYS_getpagesize:
		return h.SysGetpagesize(c)
	case sys.SYS_getgroups:
		return h.SysGetgroups(c, int(a[0]), a[1])
	case sys.SYS_setgroups:
		return h.SysSetgroups(c, int(a[0]), a[1])
	case sys.SYS_getpgrp:
		return h.SysGetpgrp(c, int(a[0]))
	case sys.SYS_setpgrp:
		return h.SysSetpgrp(c, int(a[0]), int(a[1]))
	case sys.SYS_gethostname:
		return h.SysGethostname(c, a[0], int(a[1]))
	case sys.SYS_sethostname:
		return h.SysSethostname(c, a[0], int(a[1]))
	case sys.SYS_getdtablesize:
		return h.SysGetdtablesize(c)
	case sys.SYS_dup2:
		return h.SysDup2(c, int(a[0]), int(a[1]))
	case sys.SYS_fcntl:
		return h.SysFcntl(c, int(a[0]), int(a[1]), a[2])
	case sys.SYS_fsync:
		return h.SysFsync(c, int(a[0]))
	case sys.SYS_sigvec:
		return h.SysSigvec(c, int(a[0]), a[1], a[2])
	case sys.SYS_sigblock:
		return h.SysSigblock(c, a[0])
	case sys.SYS_sigsetmask:
		return h.SysSigsetmask(c, a[0])
	case sys.SYS_sigpause:
		return h.SysSigpause(c, a[0])
	case sys.SYS_gettimeofday:
		return h.SysGettimeofday(c, a[0], a[1])
	case sys.SYS_getrusage:
		return h.SysGetrusage(c, a[0], a[1])
	case sys.SYS_settimeofday:
		return h.SysSettimeofday(c, a[0], a[1])
	case sys.SYS_rename:
		p1, e := path(0)
		if e != sys.OK {
			return sys.Retval{}, e
		}
		p2, e := path(1)
		if e != sys.OK {
			return sys.Retval{}, e
		}
		return h.SysRename(c, p1, p2)
	case sys.SYS_truncate:
		p, e := path(0)
		if e != sys.OK {
			return sys.Retval{}, e
		}
		return h.SysTruncate(c, p, int32(a[1]))
	case sys.SYS_ftruncate:
		return h.SysFtruncate(c, int(a[0]), int32(a[1]))
	case sys.SYS_flock:
		return h.SysFlock(c, int(a[0]), int(a[1]))
	case sys.SYS_mkdir:
		p, e := path(0)
		if e != sys.OK {
			return sys.Retval{}, e
		}
		return h.SysMkdir(c, p, a[1])
	case sys.SYS_rmdir:
		p, e := path(0)
		if e != sys.OK {
			return sys.Retval{}, e
		}
		return h.SysRmdir(c, p)
	case sys.SYS_utimes:
		p, e := path(0)
		if e != sys.OK {
			return sys.Retval{}, e
		}
		return h.SysUtimes(c, p, a[1])
	case sys.SYS_setsid:
		return h.SysSetsid(c)
	case sys.SYS_getrlimit:
		return h.SysGetrlimit(c, int(a[0]), a[1])
	case sys.SYS_setrlimit:
		return h.SysSetrlimit(c, int(a[0]), a[1])
	case sys.SYS_getdirentries:
		return h.SysGetdirentries(c, int(a[0]), a[1], int(a[2]), a[3])
	}
	return h.UnknownSyscall(c, num, a)
}

// Signal implements sys.SignalInterposer by dispatching to the bound
// agent's SignalUp method. (The two names differ so that the default
// SignalUp can be inherited without recursing through the dispatcher.)
func (s *Symbolic) Signal(c sys.Ctx, sig, code int) int {
	if s.self == nil {
		return sig
	}
	return s.self.SignalUp(c, sig, code)
}

// SignalUp is the default incoming-signal action: deliver unchanged.
func (s *Symbolic) SignalUp(c sys.Ctx, sig, code int) int { return sig }
