package core_test

import (
	"testing"

	"interpose/internal/agents/nullagent"
	"interpose/internal/agents/trace"
	"interpose/internal/apps"
	"interpose/internal/core"
	"interpose/internal/kernel"
	"interpose/internal/mem"
	"interpose/internal/sys"
)

// stormArgs builds plausible arguments for every implemented system call,
// so a sweep through the whole interface exercises each symbolic-layer
// decode and default. The caller provides addresses of a staged pathname,
// a second staged pathname, and a scratch buffer in the process's address
// space.
func stormArgs(num int, path1, path2, buf sys.Word) (sys.Args, bool) {
	switch num {
	case sys.SYS_exit, sys.SYS_execve:
		// Control transfers are exercised separately.
		return sys.Args{}, false
	case sys.SYS_open:
		return sys.Args{path1, sys.O_RDONLY, 0}, true
	case sys.SYS_creat:
		return sys.Args{path2, 0o644}, true
	case sys.SYS_link, sys.SYS_rename:
		return sys.Args{path1, path2}, true
	case sys.SYS_symlink:
		return sys.Args{path1, path2}, true
	case sys.SYS_unlink, sys.SYS_chdir, sys.SYS_rmdir, sys.SYS_chroot:
		return sys.Args{path1}, true
	case sys.SYS_mknod:
		return sys.Args{path2, sys.S_IFCHR | 0o600, 0x0103}, true
	case sys.SYS_chmod:
		return sys.Args{path1, 0o644}, true
	case sys.SYS_chown:
		return sys.Args{path1, 0, 0}, true
	case sys.SYS_access:
		return sys.Args{path1, sys.R_OK}, true
	case sys.SYS_stat, sys.SYS_lstat:
		return sys.Args{path1, buf}, true
	case sys.SYS_readlink:
		return sys.Args{path1, buf, 64}, true
	case sys.SYS_truncate:
		return sys.Args{path1, 1}, true
	case sys.SYS_mkdir:
		return sys.Args{path2, 0o755}, true
	case sys.SYS_utimes:
		return sys.Args{path1, 0}, true
	case sys.SYS_read, sys.SYS_write:
		return sys.Args{0, buf, 0}, true
	case sys.SYS_lseek:
		return sys.Args{0, 0, sys.SEEK_CUR}, true
	case sys.SYS_wait4:
		return sys.Args{0xffffffff, 0, sys.WNOHANG, 0}, true
	case sys.SYS_fstat:
		return sys.Args{0, buf}, true
	case sys.SYS_fcntl:
		return sys.Args{0, sys.F_GETFD, 0}, true
	case sys.SYS_ftruncate, sys.SYS_flock, sys.SYS_fsync, sys.SYS_fchdir,
		sys.SYS_close, sys.SYS_dup:
		return sys.Args{0, 0}, true
	case sys.SYS_dup2:
		return sys.Args{0, 9}, true
	case sys.SYS_ioctl:
		return sys.Args{0, sys.TIOCGWINSZ, buf}, true
	case sys.SYS_kill:
		return sys.Args{0xffffffff ^ 0, 0}, true // kill(-1, 0): probe
	case sys.SYS_sigvec:
		return sys.Args{sys.SIGUSR1, 0, buf}, true
	case sys.SYS_sigblock, sys.SYS_sigsetmask:
		return sys.Args{0}, true
	case sys.SYS_sigpause:
		// Would sleep forever; covered by the timer tests.
		return sys.Args{}, false
	case sys.SYS_gettimeofday:
		return sys.Args{buf, 0}, true
	case sys.SYS_settimeofday:
		return sys.Args{0, 0}, true // EINVAL path
	case sys.SYS_getrusage:
		return sys.Args{sys.RUSAGE_SELF, buf}, true
	case sys.SYS_getrlimit, sys.SYS_setrlimit:
		return sys.Args{sys.RLIMIT_NOFILE, buf}, true
	case sys.SYS_getdirentries:
		return sys.Args{0, buf, 64, 0}, true
	case sys.SYS_getgroups:
		return sys.Args{0, 0}, true
	case sys.SYS_setgroups:
		return sys.Args{0, buf}, true
	case sys.SYS_getpgrp:
		return sys.Args{0}, true
	case sys.SYS_setpgrp:
		return sys.Args{0, 0}, true
	case sys.SYS_gethostname:
		return sys.Args{buf, 32}, true
	case sys.SYS_sethostname:
		return sys.Args{buf, 4}, true
	case sys.SYS_setitimer, sys.SYS_getitimer:
		return sys.Args{sys.ITIMER_REAL, buf, 0}, true
	case sys.SYS_umask:
		return sys.Args{0o022}, true
	case sys.SYS_setuid:
		return sys.Args{0}, true
	case sys.SYS_brk:
		return sys.Args{0}, true
	default:
		// Parameterless query calls and fork.
		return sys.Args{}, true
	}
}

// stormProc builds a process with staged pathnames and scratch space.
func stormProc(t *testing.T, agents []core.Agent) (*kernel.Kernel, *kernel.Proc, sys.Word, sys.Word, sys.Word) {
	t.Helper()
	k, err := apps.NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	k.Console().FeedEOF() // reads of fd 0 must not block
	p := k.NewProc()
	if err := p.OpenConsole(); err != nil {
		t.Fatal(err)
	}
	for _, a := range agents {
		core.Install(p, a)
	}
	if e := p.AS().SetBrk(mem.DataBase + sys.PageSize); e != sys.OK {
		t.Fatal(e)
	}
	path1 := mem.DataBase
	path2 := mem.DataBase + 256
	buf := mem.DataBase + 512
	p.CopyOut(path1, append([]byte("/etc/passwd"), 0))
	p.CopyOut(path2, append([]byte("/tmp/storm-target"), 0))
	return k, p, path1, path2, buf
}

// runStorm issues every implemented call once and checks nothing panics
// and errors stay within the errno space.
func runStorm(t *testing.T, agents []core.Agent) {
	t.Helper()
	k, p, path1, path2, buf := stormProc(t, agents)
	for _, num := range sys.Syscalls() {
		a, ok := stormArgs(num, path1, path2, buf)
		if !ok {
			continue
		}
		_, err := p.Syscall(num, a)
		if err != sys.OK && err.Name() == "" {
			t.Errorf("%s: weird errno %d", sys.SyscallName(num), err)
		}
	}
	// And the execve default: a non-image file fails with ENOEXEC through
	// the toolkit's reimplementation. (The sweep above may have unlinked
	// the shared paths, so this uses its own file.)
	if len(agents) > 0 {
		if err := k.WriteFile("/tmp/not-an-image", []byte("garbage"), 0o755); err != nil {
			t.Fatal(err)
		}
		imgPath := buf + 512
		p.CopyOut(imgPath, append([]byte("/tmp/not-an-image"), 0))
		if _, err := p.Syscall(sys.SYS_execve, sys.Args{imgPath, 0, 0}); err != sys.ENOEXEC {
			t.Errorf("execve of non-image: %v, want ENOEXEC", err)
		}
	}
}

// TestEverySyscallThroughSymbolicDefaults sweeps the entire interface
// through the null (pass-everything) symbolic agent: every decode and
// every default action runs.
func TestEverySyscallThroughSymbolicDefaults(t *testing.T) {
	runStorm(t, []core.Agent{nullagent.New()})
}

// TestEverySyscallBare sweeps the interface with no agents, as a baseline
// for the sweep itself.
func TestEverySyscallBare(t *testing.T) {
	runStorm(t, nil)
}

// TestEverySyscallTraced sweeps the interface under the trace agent: every
// per-call trace method formats its arguments and results.
func TestEverySyscallTraced(t *testing.T) {
	runStorm(t, []core.Agent{trace.New()})
}

// TestEverySyscallStacked sweeps through a two-agent stack.
func TestEverySyscallStacked(t *testing.T) {
	runStorm(t, []core.Agent{nullagent.New(), trace.New()})
}
