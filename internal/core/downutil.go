package core

import "interpose/internal/sys"

// Utility operations agents commonly perform through downcalls. Each
// stages its arguments in the client's address space and drives the
// next-lower instance of the system interface — the agent-side equivalent
// of small C library routines.

// DownStat stats a path below the agent, following symbolic links.
func DownStat(c sys.Ctx, path string) (sys.Stat, sys.Errno) {
	return downStatCall(c, sys.SYS_stat, path)
}

// DownLstat stats a path below the agent without following a final
// symbolic link.
func DownLstat(c sys.Ctx, path string) (sys.Stat, sys.Errno) {
	return downStatCall(c, sys.SYS_lstat, path)
}

func downStatCall(c sys.Ctx, num int, path string) (sys.Stat, sys.Errno) {
	addr, err := StageAlloc(c, sys.StatSize)
	if err != sys.OK {
		return sys.Stat{}, err
	}
	if _, err := DownPath(c, num, path, addr); err != sys.OK {
		return sys.Stat{}, err
	}
	var b [sys.StatSize]byte
	if e := c.CopyIn(addr, b[:]); e != sys.OK {
		return sys.Stat{}, e
	}
	return sys.DecodeStat(b[:]), sys.OK
}

// DownReadFile reads the whole file at path below the agent.
func DownReadFile(c sys.Ctx, path string) ([]byte, sys.Errno) {
	return readFileDown(c, path)
}

// DownWriteFile creates (or truncates) path below the agent with data.
func DownWriteFile(c sys.Ctx, path string, data []byte, mode uint32) sys.Errno {
	rv, err := DownPath(c, sys.SYS_open, path, sys.O_WRONLY|sys.O_CREAT|sys.O_TRUNC, mode)
	if err != sys.OK {
		return err
	}
	fd := rv[0]
	defer Down(c, sys.SYS_close, sys.Args{fd})
	const chunk = 16 * 1024
	for len(data) > 0 {
		n := len(data)
		if n > chunk {
			n = chunk
		}
		mark := StageMark(c)
		addr, err := StageBytes(c, data[:n])
		if err != sys.OK {
			return err
		}
		wrv, err := Down(c, sys.SYS_write, sys.Args{fd, addr, sys.Word(n)})
		StageRelease(c, mark)
		if err != sys.OK {
			return err
		}
		data = data[wrv[0]:]
	}
	return sys.OK
}

// DownMkdirAll creates path and missing parents below the agent.
func DownMkdirAll(c sys.Ctx, path string, mode uint32) sys.Errno {
	if path == "" || path == "/" {
		return sys.OK
	}
	// Find the longest existing prefix, then create forward.
	var build string
	for _, part := range splitSlash(path) {
		build += "/" + part
		_, err := DownPath(c, sys.SYS_mkdir, build, mode)
		if err != sys.OK && err != sys.EEXIST {
			return err
		}
	}
	return sys.OK
}

func splitSlash(p string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(p); i++ {
		if i == len(p) || p[i] == '/' {
			if i > start {
				out = append(out, p[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// DownCopyFile copies a regular file below the agent, preserving its
// permission bits.
func DownCopyFile(c sys.Ctx, from, to string) sys.Errno {
	st, err := DownStat(c, from)
	if err != sys.OK {
		return err
	}
	data, err := DownReadFile(c, from)
	if err != sys.OK {
		return err
	}
	return DownWriteFile(c, to, data, st.Mode&0o7777)
}

// DownReaddir lists the names in a directory below the agent, excluding
// "." and "..".
func DownReaddir(c sys.Ctx, path string) ([]string, sys.Errno) {
	rv, err := DownPath(c, sys.SYS_open, path, sys.O_RDONLY)
	if err != sys.OK {
		return nil, err
	}
	fd := rv[0]
	defer Down(c, sys.SYS_close, sys.Args{fd})
	const block = 4096
	bufAddr, err := StageAlloc(c, block)
	if err != sys.OK {
		return nil, err
	}
	var names []string
	for {
		rv, err := Down(c, sys.SYS_getdirentries, sys.Args{fd, bufAddr, block, 0})
		if err != sys.OK {
			return nil, err
		}
		n := int(rv[0])
		if n == 0 {
			return names, sys.OK
		}
		raw := make([]byte, n)
		if e := c.CopyIn(bufAddr, raw); e != sys.OK {
			return nil, e
		}
		for _, d := range sys.DecodeDirents(raw) {
			if d.Name != "." && d.Name != ".." {
				names = append(names, d.Name)
			}
		}
	}
}
