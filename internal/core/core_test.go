package core_test

import (
	"strings"
	"testing"

	"interpose/internal/agents/nullagent"
	"interpose/internal/agents/timex"
	"interpose/internal/agents/trace"
	"interpose/internal/core"
	"interpose/internal/image"
	"interpose/internal/kernel"
	"interpose/internal/libc"
	"interpose/internal/sys"
)

// world boots a kernel with small test programs.
func world(t *testing.T) *kernel.Kernel {
	t.Helper()
	reg := image.NewRegistry()
	reg.Register("clock", libc.Main(func(lt *libc.T) int {
		tv, err := lt.Gettimeofday()
		if err != sys.OK {
			return 1
		}
		lt.Printf("sec=%d\n", tv.Sec)
		return 0
	}))
	reg.Register("toucher", libc.Main(func(lt *libc.T) int {
		if err := lt.WriteFile("/tmp/touched", []byte("data"), 0o644); err != sys.OK {
			return 1
		}
		st, err := lt.Stat("/tmp/touched")
		if err != sys.OK || st.Size != 4 {
			return 2
		}
		return 0
	}))
	reg.Register("execself", libc.Main(func(lt *libc.T) int {
		if len(lt.Args) > 1 && lt.Args[1] == "second" {
			lt.Printf("second stage pid=%d\n", lt.Getpid())
			return 0
		}
		lt.Exec("/bin/execself", []string{"execself", "second"}, lt.Env)
		return 9
	}))
	reg.Register("forker", libc.Main(func(lt *libc.T) int {
		pid, err := lt.Fork(func(ct *libc.T) {
			ct.Printf("child time check\n")
			tv, _ := ct.Gettimeofday()
			ct.Printf("child sec=%d\n", tv.Sec)
			ct.Exit(0)
		})
		if err != sys.OK {
			return 1
		}
		lt.Waitpid(pid)
		return 0
	}))
	k := kernel.New(reg)
	for _, n := range []string{"clock", "toucher", "execself", "forker"} {
		if err := k.InstallProgram("/bin/"+n, n); err != nil {
			t.Fatalf("install: %v", err)
		}
	}
	return k
}

func TestTimexShiftsTime(t *testing.T) {
	k := world(t)
	// Run without agent.
	st, out, err := core.Run(k, nil, "/bin/clock", []string{"clock"}, nil)
	if err != nil || sys.WExitStatus(st) != 0 {
		t.Fatalf("bare run: %v %#x %q", err, st, out)
	}
	var bare int64
	if _, e := parse(out, "sec=%d\n", &bare); e != nil {
		t.Fatalf("parse %q: %v", out, e)
	}

	a, aerr := timex.New("100000")
	if aerr != nil {
		t.Fatal(aerr)
	}
	st, out, err = core.Run(k, []core.Agent{a}, "/bin/clock", []string{"clock"}, nil)
	if err != nil || sys.WExitStatus(st) != 0 {
		t.Fatalf("timex run: %v %#x %q", err, st, out)
	}
	var shifted int64
	if _, e := parse(out, "sec=%d\n", &shifted); e != nil {
		t.Fatalf("parse %q: %v", out, e)
	}
	diff := shifted - bare
	if diff < 99990 || diff > 100010 {
		t.Fatalf("timex shift = %d, want ~100000", diff)
	}
}

func TestTimexFollowsForkChildren(t *testing.T) {
	k := world(t)
	a, _ := timex.New("500000")
	st, out, err := core.Run(k, []core.Agent{a}, "/bin/forker", []string{"forker"}, nil)
	if err != nil || sys.WExitStatus(st) != 0 {
		t.Fatalf("run: %v %#x %q", err, st, out)
	}
	var childSec int64
	if _, e := parseAfter(out, "child sec=", &childSec); e != nil {
		t.Fatalf("parse %q: %v", out, e)
	}
	if childSec < 400000 {
		t.Fatalf("child not under agent: sec=%d", childSec)
	}
}

func TestNullAgentTransparent(t *testing.T) {
	k := world(t)
	st, out, err := core.Run(k, []core.Agent{nullagent.New()}, "/bin/toucher", []string{"toucher"}, nil)
	if err != nil || sys.WExitStatus(st) != 0 {
		t.Fatalf("run: %v status=%#x out=%q", err, st, out)
	}
	data, ferr := k.ReadFile("/tmp/touched")
	if ferr != nil || string(data) != "data" {
		t.Fatalf("file: %v %q", ferr, data)
	}
}

func TestNullAgentExecve(t *testing.T) {
	// Exercises the toolkit's execve reimplementation from primitives.
	k := world(t)
	st, out, err := core.Run(k, []core.Agent{nullagent.New()}, "/bin/execself", []string{"execself"}, nil)
	if err != nil || sys.WExitStatus(st) != 0 {
		t.Fatalf("run: %v status=%#x out=%q", err, st, out)
	}
	if !strings.Contains(out, "second stage pid=") {
		t.Fatalf("out = %q", out)
	}
}

func TestTraceOutput(t *testing.T) {
	k := world(t)
	st, out, err := core.Run(k, []core.Agent{trace.New()}, "/bin/toucher", []string{"toucher"}, nil)
	if err != nil || sys.WExitStatus(st) != 0 {
		t.Fatalf("run: %v status=%#x out=%q", err, st, out)
	}
	for _, want := range []string{
		`open("/tmp/touched"`, "... open -> 3", `stat("/tmp/touched"`, "exit(0)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace output missing %q in:\n%s", want, out)
		}
	}
}

func TestStackedAgents(t *testing.T) {
	// timex under trace: both effects visible.
	k := world(t)
	tx, _ := timex.New("100000")
	st, out, err := core.Run(k, []core.Agent{tx, trace.New()}, "/bin/clock", []string{"clock"}, nil)
	if err != nil || sys.WExitStatus(st) != 0 {
		t.Fatalf("run: %v %#x %q", err, st, out)
	}
	if !strings.Contains(out, "gettimeofday") {
		t.Fatalf("no trace of gettimeofday:\n%s", out)
	}
	var sec int64
	if _, e := parseAfter(out, "sec=", &sec); e != nil {
		t.Fatalf("parse: %v\n%s", e, out)
	}
}

// parse and parseAfter are tiny scanners for test output.
func parse(s, format string, out *int64) (int, error) {
	idx := strings.Index(format, "%d")
	prefix := format[:idx]
	return parseAfter(s, prefix, out)
}

func parseAfter(s, prefix string, out *int64) (int, error) {
	i := strings.Index(s, prefix)
	if i < 0 {
		return 0, strError("prefix not found: " + prefix)
	}
	s = s[i+len(prefix):]
	var v int64
	n := 0
	for n < len(s) && s[n] >= '0' && s[n] <= '9' {
		v = v*10 + int64(s[n]-'0')
		n++
	}
	if n == 0 {
		return 0, strError("no digits after " + prefix)
	}
	*out = v
	return n, nil
}

type strError string

func (e strError) Error() string { return string(e) }
