// Package core is the interposition toolkit: the paper's primary
// contribution. It lets agents be written in terms of the high-level
// objects of the 4.3BSD system interface rather than in terms of raw
// intercepted system calls, with the amount of new agent code proportional
// to the new functionality rather than to the size of the interface.
//
// The toolkit is layered exactly as in the paper's Figure 2-1:
//
//   - Boilerplate (this package's Launch/Install plumbing and the
//     kernel's emulation-layer mechanism): agent invocation, system call
//     interception, downcalls past the agent (Down, the htg_unix_syscall
//     analog), and signal delivery in both directions. Agents do not use
//     these directly.
//
//   - Numeric system call layer (Numeric): the system interface as a
//     single entry point accepting vectors of untyped numeric arguments,
//     with per-number interest registration. Interception is pay-per-use:
//     numbers without registered interest bypass the agent entirely.
//
//   - Symbolic system call layer (Symbolic): one typed method per system
//     call; the toolkit decodes each intercepted call's arguments and
//     invokes the corresponding method on the outermost agent object.
//     Default implementations take the default action — they make the
//     same call on the next-lower instance of the system interface.
//
//   - Primary abstraction layer (DescriptorSet, PathnameSet, Pathname,
//     OpenObject): the interface as sets of methods on objects
//     representing pathnames and descriptors. The pivotal hooks are
//     PathnameSet.GetPN, which resolves a pathname string to a Pathname
//     object, and the OpenObject operations behind each descriptor.
//
//   - Secondary object layer (Directory): specialized open objects, with
//     the NextDirentry hook that the union agent overrides.
//
// C++ inheritance in the paper maps to Go struct embedding plus an
// explicit Bind(self) step that gives the toolkit layers a reference to
// the outermost object, so that default implementations dispatch through
// agent overrides ("virtual functions").
package core
