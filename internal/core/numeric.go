package core

import "interpose/internal/sys"

// Numeric is the numeric system call layer: the lowest toolkit layer used
// directly by agents. It presents the system interface as a single entry
// point accepting vectors of untyped numeric arguments, with per-number
// interest registration.
//
// An agent embeds Numeric, registers the numbers it wants, and overrides
// Syscall (the whole entry point). The default Syscall takes the default
// action: it passes the call to the next-lower instance of the system
// interface unchanged.
type Numeric struct {
	nums    [sys.MaxSyscall]bool
	numsAll bool
	sigs    uint32
	sigsAll bool
}

// RegisterInterest registers interest in one system call number.
func (n *Numeric) RegisterInterest(num int) {
	if num >= 0 && num < sys.MaxSyscall {
		n.nums[num] = true
	}
}

// RegisterInterestRange registers interest in the numbers [low, high].
func (n *Numeric) RegisterInterestRange(low, high int) {
	for i := low; i <= high; i++ {
		n.RegisterInterest(i)
	}
}

// RegisterAll registers interest in every system call number.
func (n *Numeric) RegisterAll() { n.numsAll = true }

// RegisterSignal registers interest in one incoming signal.
func (n *Numeric) RegisterSignal(sig int) {
	if sig > 0 && sig < sys.NSIG {
		n.sigs |= sys.SigMask(sig)
	}
}

// RegisterAllSignals registers interest in every incoming signal.
func (n *Numeric) RegisterAllSignals() { n.sigsAll = true }

// InterestedSyscalls implements Agent.
func (n *Numeric) InterestedSyscalls() ([]int, bool) {
	if n.numsAll {
		return nil, true
	}
	var out []int
	for i, b := range n.nums {
		if b {
			out = append(out, i)
		}
	}
	return out, false
}

// InterestedSignals implements Agent.
func (n *Numeric) InterestedSignals() (uint32, bool) { return n.sigs, n.sigsAll }

// Syscall implements sys.Handler with the default action: pass the call
// down unchanged.
func (n *Numeric) Syscall(c sys.Ctx, num int, a sys.Args) (sys.Retval, sys.Errno) {
	return Down(c, num, a)
}

// Signal implements sys.SignalInterposer with the default action: deliver
// the signal unchanged.
func (n *Numeric) Signal(c sys.Ctx, sig int, code int) int { return sig }

// Interface checks.
var (
	_ Agent                = (*Numeric)(nil)
	_ sys.SignalInterposer = (*Numeric)(nil)
)
