package core_test

import (
	"strings"
	"testing"

	"interpose/internal/agents/nullagent"
	"interpose/internal/agents/timex"
	"interpose/internal/agents/trace"
	"interpose/internal/core"
	"interpose/internal/image"
	"interpose/internal/kernel"
	"interpose/internal/sys"
	"interpose/internal/telemetry"
)

// TestInterestVectorCompilation checks the per-syscall interest bitmaps
// the kernel compiles at stack-build time: a partial-interest agent sets
// its bit only on its registered numbers, a blanket agent on all, and
// attach/detach recompute the vector.
func TestInterestVectorCompilation(t *testing.T) {
	k := kernel.New(image.NewRegistry())
	p := k.NewProc()

	if m := p.InterestMask(sys.SYS_getpid); m != 0 {
		t.Fatalf("empty stack: getpid mask %#x, want 0", m)
	}

	// Layer 0: timex, interested only in gettimeofday.
	tx, err := timex.New("3600")
	if err != nil {
		t.Fatal(err)
	}
	core.Install(p, tx)
	if m := p.InterestMask(sys.SYS_gettimeofday); m != 1 {
		t.Fatalf("timex: gettimeofday mask %#x, want 1", m)
	}
	if m := p.InterestMask(sys.SYS_getpid); m != 0 {
		t.Fatalf("timex: getpid mask %#x, want 0 (uninterested)", m)
	}

	// Layer 1: trace, blanket interest — both bits on gettimeofday, only
	// trace's on getpid.
	tr := trace.New()
	core.Install(p, tr)
	if m := p.InterestMask(sys.SYS_gettimeofday); m != 0b11 {
		t.Fatalf("timex+trace: gettimeofday mask %#x, want 0b11", m)
	}
	if m := p.InterestMask(sys.SYS_getpid); m != 0b10 {
		t.Fatalf("timex+trace: getpid mask %#x, want 0b10", m)
	}

	// Detach trace: masks drop back to timex alone.
	if !core.Uninstall(p, tr) {
		t.Fatal("uninstall trace failed")
	}
	if m := p.InterestMask(sys.SYS_getpid); m != 0 {
		t.Fatalf("after detach: getpid mask %#x, want 0", m)
	}
	if m := p.InterestMask(sys.SYS_gettimeofday); m != 1 {
		t.Fatalf("after detach: gettimeofday mask %#x, want 1", m)
	}

	// Detach timex: empty again. Double-detach reports false.
	if !core.Uninstall(p, tx) {
		t.Fatal("uninstall timex failed")
	}
	if m := p.InterestMask(sys.SYS_gettimeofday); m != 0 {
		t.Fatalf("empty again: gettimeofday mask %#x, want 0", m)
	}
	if core.Uninstall(p, tx) {
		t.Fatal("second uninstall of timex reported true")
	}
}

// layerCalls returns the attribution call count for one layer index.
func layerCalls(s telemetry.Snapshot, layer int) uint64 {
	for _, l := range s.Layers {
		if l.Layer == layer {
			return l.Calls
		}
	}
	return 0
}

// TestDetachReturnsToFastPath is the satellite claim for detach: while an
// agent interested in getpid is attached its layer accrues attribution;
// after Uninstall the same calls run uninterposed — the kernel's count
// keeps growing, the layer's stops.
func TestDetachReturnsToFastPath(t *testing.T) {
	k := kernel.New(image.NewRegistry())
	reg := telemetry.NewRegistry()
	k.SetTelemetry(reg)
	p := k.NewProc()

	a := nullagent.New()
	core.Install(p, a)

	const n = 100
	for i := 0; i < n; i++ {
		if _, err := p.Syscall(sys.SYS_getpid, sys.Args{}); err != sys.OK {
			t.Fatalf("getpid under agent: %v", err)
		}
	}
	mid := reg.Snapshot()
	agentMid, kernMid := layerCalls(mid, 1), layerCalls(mid, 0)
	if agentMid < n {
		t.Fatalf("agent layer attribution %d, want ≥%d", agentMid, n)
	}

	if !core.Uninstall(p, a) {
		t.Fatal("uninstall failed")
	}
	if m := p.InterestMask(sys.SYS_getpid); m != 0 {
		t.Fatalf("after detach: getpid mask %#x, want 0", m)
	}
	for i := 0; i < n; i++ {
		if _, err := p.Syscall(sys.SYS_getpid, sys.Args{}); err != sys.OK {
			t.Fatalf("getpid after detach: %v", err)
		}
	}
	end := reg.Snapshot()
	agentEnd, kernEnd := layerCalls(end, 1), layerCalls(end, 0)
	if agentEnd != agentMid {
		t.Fatalf("agent layer still accruing after detach: %d → %d", agentMid, agentEnd)
	}
	if kernEnd < kernMid+n {
		t.Fatalf("kernel attribution %d → %d, want +%d", kernMid, kernEnd, n)
	}
}

// TestMidRunAttachDetach attaches and detaches a trace agent while the
// client is alive: output produced before attach and after detach is
// untraced, output in between is traced.
func TestMidRunAttachDetach(t *testing.T) {
	k := world(t)
	p, err := core.Launch(k, nil, "/bin/clock", []string{"clock"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Attach and immediately detach a trace agent on the live process: the
	// stack recompiles atomically both times and the process must still
	// run to completion untraced.
	tr := trace.New()
	core.Install(p, tr)
	if m := p.InterestMask(sys.SYS_getpid); m == 0 {
		t.Fatal("trace attached but getpid mask empty")
	}
	if !core.Uninstall(p, tr) {
		t.Fatal("uninstall failed")
	}
	st := k.WaitExit(p)
	if sys.WExitStatus(st) != 0 {
		t.Fatalf("clock exited %d", sys.WExitStatus(st))
	}
	out := k.Console().TakeOutput()
	if !strings.Contains(out, "sec=") {
		t.Fatalf("clock produced no output: %q", out)
	}
}
