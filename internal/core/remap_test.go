package core_test

import (
	"testing"

	"interpose/internal/core"
	"interpose/internal/sys"
)

// The paper's §2.3 numeric-layer example: "one range of system call
// numbers could be remapped to calls on a different range at this level."

// rangeRemapper shifts an unused call-number range down onto the native
// numbers, purely at the numeric layer.
type rangeRemapper struct {
	core.Numeric
	delta int
}

func newRangeRemapper(low, high, delta int) *rangeRemapper {
	a := &rangeRemapper{delta: delta}
	a.RegisterInterestRange(low, high)
	return a
}

func (a *rangeRemapper) Syscall(c sys.Ctx, num int, args sys.Args) (sys.Retval, sys.Errno) {
	return core.Down(c, num-a.delta, args)
}

func TestNumericRangeRemap(t *testing.T) {
	_, p := hostProc(t)
	// Map calls 1000+n onto native call n... our MaxSyscall is small, so
	// use the in-range hole 100..107 → 20..27 (getpid lives at 20).
	core.Install(p, newRangeRemapper(100, 107, 80))

	// The remapped number behaves as getpid.
	rv, err := p.Syscall(100, sys.Args{})
	if err != sys.OK || int(rv[0]) != p.PID() {
		t.Fatalf("remapped getpid: %d %v", rv[0], err)
	}
	// Native numbers still work.
	rv, err = p.Syscall(sys.SYS_getpid, sys.Args{})
	if err != sys.OK || int(rv[0]) != p.PID() {
		t.Fatalf("native getpid: %d %v", rv[0], err)
	}
	// Unassigned numbers outside the registered range stay unknown.
	if _, err := p.Syscall(150, sys.Args{}); err != sys.ENOSYS {
		t.Fatalf("unregistered number: %v", err)
	}
}

func TestInterestRangeBounds(t *testing.T) {
	a := &rangeRemapper{}
	a.RegisterInterestRange(-5, 3)
	nums, all := a.InterestedSyscalls()
	if all {
		t.Fatal("range registration set blanket interest")
	}
	if len(nums) != 4 || nums[0] != 0 || nums[3] != 3 {
		t.Fatalf("nums = %v", nums)
	}
}
