package core

import "interpose/internal/sys"

// Default implementations of the symbolic system call methods. Each takes
// the default action for the call: it makes the same system call on the
// next-lower instance of the system interface. Pathname arguments, which
// the dispatcher decoded to strings, are re-staged in the client's
// address space for the downcall — so an agent that rewrote the path gets
// the rewritten path passed down.

func w(v int) sys.Word { return sys.Word(int32(v)) }

// SysExit takes the default action for exit. It does not return.
func (s *Symbolic) SysExit(c sys.Ctx, status int) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_exit, sys.Args{w(status)})
}

// SysFork takes the default action for fork.
func (s *Symbolic) SysFork(c sys.Ctx) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_fork, sys.Args{})
}

// SysRead takes the default action for read.
func (s *Symbolic) SysRead(c sys.Ctx, fd int, buf sys.Word, cnt int) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_read, sys.Args{w(fd), buf, w(cnt)})
}

// SysWrite takes the default action for write.
func (s *Symbolic) SysWrite(c sys.Ctx, fd int, buf sys.Word, cnt int) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_write, sys.Args{w(fd), buf, w(cnt)})
}

// SysOpen takes the default action for open.
func (s *Symbolic) SysOpen(c sys.Ctx, path string, flags int, mode uint32) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_open, path, w(flags), mode)
}

// SysClose takes the default action for close.
func (s *Symbolic) SysClose(c sys.Ctx, fd int) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_close, sys.Args{w(fd)})
}

// SysWait4 takes the default action for wait4.
func (s *Symbolic) SysWait4(c sys.Ctx, pid int, statusAddr sys.Word, options int, ruAddr sys.Word) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_wait4, sys.Args{w(pid), statusAddr, w(options), ruAddr})
}

// SysCreat takes the default action for creat.
func (s *Symbolic) SysCreat(c sys.Ctx, path string, mode uint32) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_creat, path, mode)
}

// SysLink takes the default action for link.
func (s *Symbolic) SysLink(c sys.Ctx, path, newPath string) (sys.Retval, sys.Errno) {
	return DownPath2(c, sys.SYS_link, path, newPath)
}

// SysUnlink takes the default action for unlink.
func (s *Symbolic) SysUnlink(c sys.Ctx, path string) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_unlink, path)
}

// SysChdir takes the default action for chdir.
func (s *Symbolic) SysChdir(c sys.Ctx, path string) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_chdir, path)
}

// SysFchdir takes the default action for fchdir.
func (s *Symbolic) SysFchdir(c sys.Ctx, fd int) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_fchdir, sys.Args{w(fd)})
}

// SysMknod takes the default action for mknod.
func (s *Symbolic) SysMknod(c sys.Ctx, path string, mode uint32, dev sys.Word) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_mknod, path, mode, dev)
}

// SysChmod takes the default action for chmod.
func (s *Symbolic) SysChmod(c sys.Ctx, path string, mode uint32) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_chmod, path, mode)
}

// SysChown takes the default action for chown.
func (s *Symbolic) SysChown(c sys.Ctx, path string, uid, gid sys.Word) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_chown, path, uid, gid)
}

// SysBrk takes the default action for brk.
func (s *Symbolic) SysBrk(c sys.Ctx, addr sys.Word) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_brk, sys.Args{addr})
}

// SysLseek takes the default action for lseek.
func (s *Symbolic) SysLseek(c sys.Ctx, fd int, off int32, whence int) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_lseek, sys.Args{w(fd), sys.Word(off), w(whence)})
}

// SysGetpid takes the default action for getpid.
func (s *Symbolic) SysGetpid(c sys.Ctx) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_getpid, sys.Args{})
}

// SysSetuid takes the default action for setuid.
func (s *Symbolic) SysSetuid(c sys.Ctx, uid sys.Word) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_setuid, sys.Args{uid})
}

// SysGetuid takes the default action for getuid.
func (s *Symbolic) SysGetuid(c sys.Ctx) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_getuid, sys.Args{})
}

// SysGeteuid takes the default action for geteuid.
func (s *Symbolic) SysGeteuid(c sys.Ctx) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_geteuid, sys.Args{})
}

// SysAccess takes the default action for access.
func (s *Symbolic) SysAccess(c sys.Ctx, path string, mode int) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_access, path, w(mode))
}

// SysSync takes the default action for sync.
func (s *Symbolic) SysSync(c sys.Ctx) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_sync, sys.Args{})
}

// SysKill takes the default action for kill.
func (s *Symbolic) SysKill(c sys.Ctx, pid, sig int) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_kill, sys.Args{w(pid), w(sig)})
}

// SysStat takes the default action for stat.
func (s *Symbolic) SysStat(c sys.Ctx, path string, statAddr sys.Word) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_stat, path, statAddr)
}

// SysGetppid takes the default action for getppid.
func (s *Symbolic) SysGetppid(c sys.Ctx) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_getppid, sys.Args{})
}

// SysLstat takes the default action for lstat.
func (s *Symbolic) SysLstat(c sys.Ctx, path string, statAddr sys.Word) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_lstat, path, statAddr)
}

// SysDup takes the default action for dup.
func (s *Symbolic) SysDup(c sys.Ctx, fd int) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_dup, sys.Args{w(fd)})
}

// SysPipe takes the default action for pipe.
func (s *Symbolic) SysPipe(c sys.Ctx) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_pipe, sys.Args{})
}

// SysGetegid takes the default action for getegid.
func (s *Symbolic) SysGetegid(c sys.Ctx) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_getegid, sys.Args{})
}

// SysGetgid takes the default action for getgid.
func (s *Symbolic) SysGetgid(c sys.Ctx) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_getgid, sys.Args{})
}

// SysIoctl takes the default action for ioctl.
func (s *Symbolic) SysIoctl(c sys.Ctx, fd int, req, arg sys.Word) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_ioctl, sys.Args{w(fd), req, arg})
}

// SysSymlink takes the default action for symlink.
func (s *Symbolic) SysSymlink(c sys.Ctx, target, linkPath string) (sys.Retval, sys.Errno) {
	return DownPath2(c, sys.SYS_symlink, target, linkPath)
}

// SysReadlink takes the default action for readlink.
func (s *Symbolic) SysReadlink(c sys.Ctx, path string, buf sys.Word, n int) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_readlink, path, buf, w(n))
}

// SysUmask takes the default action for umask.
func (s *Symbolic) SysUmask(c sys.Ctx, mask uint32) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_umask, sys.Args{mask})
}

// SysChroot takes the default action for chroot.
func (s *Symbolic) SysChroot(c sys.Ctx, path string) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_chroot, path)
}

// SysFstat takes the default action for fstat.
func (s *Symbolic) SysFstat(c sys.Ctx, fd int, statAddr sys.Word) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_fstat, sys.Args{w(fd), statAddr})
}

// SysGetpagesize takes the default action for getpagesize.
func (s *Symbolic) SysGetpagesize(c sys.Ctx) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_getpagesize, sys.Args{})
}

// SysGetgroups takes the default action for getgroups.
func (s *Symbolic) SysGetgroups(c sys.Ctx, n int, addr sys.Word) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_getgroups, sys.Args{w(n), addr})
}

// SysSetgroups takes the default action for setgroups.
func (s *Symbolic) SysSetgroups(c sys.Ctx, n int, addr sys.Word) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_setgroups, sys.Args{w(n), addr})
}

// SysGetpgrp takes the default action for getpgrp.
func (s *Symbolic) SysGetpgrp(c sys.Ctx, pid int) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_getpgrp, sys.Args{w(pid)})
}

// SysSetpgrp takes the default action for setpgrp.
func (s *Symbolic) SysSetpgrp(c sys.Ctx, pid, pgrp int) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_setpgrp, sys.Args{w(pid), w(pgrp)})
}

// SysGethostname takes the default action for gethostname.
func (s *Symbolic) SysGethostname(c sys.Ctx, addr sys.Word, n int) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_gethostname, sys.Args{addr, w(n)})
}

// SysSethostname takes the default action for sethostname.
func (s *Symbolic) SysSethostname(c sys.Ctx, addr sys.Word, n int) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_sethostname, sys.Args{addr, w(n)})
}

// SysGetdtablesize takes the default action for getdtablesize.
func (s *Symbolic) SysGetdtablesize(c sys.Ctx) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_getdtablesize, sys.Args{})
}

// SysDup2 takes the default action for dup2.
func (s *Symbolic) SysDup2(c sys.Ctx, oldfd, newfd int) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_dup2, sys.Args{w(oldfd), w(newfd)})
}

// SysFcntl takes the default action for fcntl.
func (s *Symbolic) SysFcntl(c sys.Ctx, fd, cmd int, arg sys.Word) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_fcntl, sys.Args{w(fd), w(cmd), arg})
}

// SysFsync takes the default action for fsync.
func (s *Symbolic) SysFsync(c sys.Ctx, fd int) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_fsync, sys.Args{w(fd)})
}

// SysSigvec takes the default action for sigvec.
func (s *Symbolic) SysSigvec(c sys.Ctx, sig int, nsv, osv sys.Word) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_sigvec, sys.Args{w(sig), nsv, osv})
}

// SysSigblock takes the default action for sigblock.
func (s *Symbolic) SysSigblock(c sys.Ctx, mask uint32) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_sigblock, sys.Args{mask})
}

// SysSigsetmask takes the default action for sigsetmask.
func (s *Symbolic) SysSigsetmask(c sys.Ctx, mask uint32) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_sigsetmask, sys.Args{mask})
}

// SysSigpause takes the default action for sigpause.
func (s *Symbolic) SysSigpause(c sys.Ctx, mask uint32) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_sigpause, sys.Args{mask})
}

// SysGettimeofday takes the default action for gettimeofday.
func (s *Symbolic) SysGettimeofday(c sys.Ctx, tv, tz sys.Word) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_gettimeofday, sys.Args{tv, tz})
}

// SysGetrusage takes the default action for getrusage.
func (s *Symbolic) SysGetrusage(c sys.Ctx, who, ru sys.Word) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_getrusage, sys.Args{who, ru})
}

// SysSettimeofday takes the default action for settimeofday.
func (s *Symbolic) SysSettimeofday(c sys.Ctx, tv, tz sys.Word) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_settimeofday, sys.Args{tv, tz})
}

// SysRename takes the default action for rename.
func (s *Symbolic) SysRename(c sys.Ctx, from, to string) (sys.Retval, sys.Errno) {
	return DownPath2(c, sys.SYS_rename, from, to)
}

// SysTruncate takes the default action for truncate.
func (s *Symbolic) SysTruncate(c sys.Ctx, path string, length int32) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_truncate, path, sys.Word(length))
}

// SysFtruncate takes the default action for ftruncate.
func (s *Symbolic) SysFtruncate(c sys.Ctx, fd int, length int32) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_ftruncate, sys.Args{w(fd), sys.Word(length)})
}

// SysFlock takes the default action for flock.
func (s *Symbolic) SysFlock(c sys.Ctx, fd, op int) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_flock, sys.Args{w(fd), w(op)})
}

// SysMkdir takes the default action for mkdir.
func (s *Symbolic) SysMkdir(c sys.Ctx, path string, mode uint32) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_mkdir, path, mode)
}

// SysRmdir takes the default action for rmdir.
func (s *Symbolic) SysRmdir(c sys.Ctx, path string) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_rmdir, path)
}

// SysUtimes takes the default action for utimes.
func (s *Symbolic) SysUtimes(c sys.Ctx, path string, tvAddr sys.Word) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_utimes, path, tvAddr)
}

// SysSetsid takes the default action for setsid.
func (s *Symbolic) SysSetsid(c sys.Ctx) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_setsid, sys.Args{})
}

// SysGetrlimit takes the default action for getrlimit.
func (s *Symbolic) SysGetrlimit(c sys.Ctx, res int, addr sys.Word) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_getrlimit, sys.Args{w(res), addr})
}

// SysSetrlimit takes the default action for setrlimit.
func (s *Symbolic) SysSetrlimit(c sys.Ctx, res int, addr sys.Word) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_setrlimit, sys.Args{w(res), addr})
}

// SysGetdirentries takes the default action for getdirentries.
func (s *Symbolic) SysGetdirentries(c sys.Ctx, fd int, buf sys.Word, nbytes int, basep sys.Word) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_getdirentries, sys.Args{w(fd), buf, w(nbytes), basep})
}

// UnknownSyscall takes the default action for unimplemented numbers.
func (s *Symbolic) UnknownSyscall(c sys.Ctx, num int, a sys.Args) (sys.Retval, sys.Errno) {
	return Down(c, num, a)
}
