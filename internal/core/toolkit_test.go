package core_test

import (
	"testing"

	"interpose/internal/core"
	"interpose/internal/image"
	"interpose/internal/kernel"
	"interpose/internal/libc"
	"interpose/internal/sys"
)

// hostProc makes a process suitable for host-driven toolkit tests.
func hostProc(t *testing.T) (*kernel.Kernel, *kernel.Proc) {
	t.Helper()
	k := kernel.New(image.NewRegistry())
	p := k.NewProc()
	if err := p.OpenConsole(); err != nil {
		t.Fatal(err)
	}
	return k, p
}

func TestDownBypassesOwnLayer(t *testing.T) {
	// A layer that rewrites getpid to 999 — but its own downcalls reach
	// the kernel's real implementation.
	_, p := hostProc(t)
	rewriter := sys.HandlerFunc(func(c sys.Ctx, num int, a sys.Args) (sys.Retval, sys.Errno) {
		rv, err := core.Down(c, num, a)
		if err == sys.OK {
			rv[0] = 999
		}
		return rv, err
	})
	layer := kernel.NewEmuLayer(rewriter)
	layer.Register(sys.SYS_getpid)
	p.PushEmulation(layer)

	rv, err := p.Syscall(sys.SYS_getpid, sys.Args{})
	if err != sys.OK || rv[0] != 999 {
		t.Fatalf("rewritten getpid = %d, %v", rv[0], err)
	}
	// KernelSyscall bypasses every layer.
	rv, err = p.KernelSyscall(sys.SYS_getpid, sys.Args{})
	if err != sys.OK || rv[0] == 999 {
		t.Fatalf("kernel getpid = %d, %v", rv[0], err)
	}
}

func TestPayPerUseSkipsLayer(t *testing.T) {
	_, p := hostProc(t)
	touched := 0
	spy := sys.HandlerFunc(func(c sys.Ctx, num int, a sys.Args) (sys.Retval, sys.Errno) {
		touched++
		return core.Down(c, num, a)
	})
	layer := kernel.NewEmuLayer(spy)
	layer.Register(sys.SYS_getuid)
	p.PushEmulation(layer)

	p.Syscall(sys.SYS_getpid, sys.Args{}) // not registered
	if touched != 0 {
		t.Fatal("uninstrumented call hit the layer")
	}
	p.Syscall(sys.SYS_getuid, sys.Args{}) // registered
	if touched != 1 {
		t.Fatal("instrumented call missed the layer")
	}
}

func TestStagingMarkRelease(t *testing.T) {
	_, p := hostProc(t)
	var inside sys.Ctx
	grab := sys.HandlerFunc(func(c sys.Ctx, num int, a sys.Args) (sys.Retval, sys.Errno) {
		inside = c
		mark := core.StageMark(c)
		a1, err := core.StageString(c, "hello")
		if err != sys.OK {
			t.Errorf("stage: %v", err)
		}
		a2, _ := core.StageString(c, "world")
		if a1 == a2 {
			t.Error("staging reused live space")
		}
		s, _ := c.CopyInString(a1, 100)
		if s != "hello" {
			t.Errorf("staged = %q", s)
		}
		core.StageRelease(c, mark)
		a3, _ := core.StageString(c, "reuse")
		if a3 != a1 {
			t.Error("release did not rewind the cursor")
		}
		return core.Down(c, num, a)
	})
	layer := kernel.NewEmuLayer(grab)
	layer.Register(sys.SYS_getpid)
	p.PushEmulation(layer)
	p.Syscall(sys.SYS_getpid, sys.Args{})
	if inside == nil {
		t.Fatal("layer never ran")
	}
}

func TestStagingResetsPerSyscall(t *testing.T) {
	_, p := hostProc(t)
	var first, second sys.Word
	n := 0
	grab := sys.HandlerFunc(func(c sys.Ctx, num int, a sys.Args) (sys.Retval, sys.Errno) {
		addr, _ := core.StageString(c, "x")
		if n == 0 {
			first = addr
		} else {
			second = addr
		}
		n++
		return core.Down(c, num, a)
	})
	layer := kernel.NewEmuLayer(grab)
	layer.Register(sys.SYS_getpid)
	p.PushEmulation(layer)
	p.Syscall(sys.SYS_getpid, sys.Args{})
	p.Syscall(sys.SYS_getpid, sys.Args{})
	if first == 0 || first != second {
		t.Fatalf("scratch not reset per call: %#x vs %#x", first, second)
	}
}

func TestOpenObjectRefcount(t *testing.T) {
	released := 0
	oo := core.NewBaseOpenObject(3)
	oo.OnRelease = func(sys.Ctx) { released++ }
	oo.Ref()
	oo.Ref()
	if oo.Refs() != 3 {
		t.Fatalf("refs = %d", oo.Refs())
	}
	oo.Unref(nil)
	oo.Unref(nil)
	if released != 0 {
		t.Fatal("released early")
	}
	oo.Unref(nil)
	if released != 1 {
		t.Fatal("final unref did not release")
	}
}

func TestDescriptorMirrorAcrossDupAndClose(t *testing.T) {
	// An agent attaches an object to an fd; dup aliases it, close drops
	// one reference, the last close releases.
	kk := fddanceWorld(t)
	// Buffered generously: the program's setup write also opens the file.
	released := make(chan int, 8)

	agent := &mirrorAgent{released: released}
	agent.BindPathnames(agent)
	agent.RegisterPathCalls()
	agent.RegisterDescriptorCalls()

	st, out, err := core.Run(kk, []core.Agent{agent}, "/bin/fddance", []string{"fddance"}, nil)
	if err != nil || sys.WExitStatus(st) != 0 {
		t.Fatalf("%v %#x %q", err, st, out)
	}
	select {
	case <-released:
	default:
		t.Fatal("object never released")
	}
}

// mirrorAgent wraps opens of /tmp/mirror in a counting object.
type mirrorAgent struct {
	core.PathnameSet
	released chan int
}

func (a *mirrorAgent) GetPN(c sys.Ctx, path string, op core.PathOp) (core.Pathname, sys.Errno) {
	if path == "/tmp/mirror" {
		return &mirrorPathname{BasePathname: core.BasePathname{P: path}, a: a}, sys.OK
	}
	return a.PathnameSet.GetPN(c, path, op)
}

type mirrorPathname struct {
	core.BasePathname
	a *mirrorAgent
}

func (p *mirrorPathname) Open(c sys.Ctx, flags int, mode uint32) (sys.Retval, core.OpenObject, sys.Errno) {
	rv, _, err := p.BasePathname.Open(c, flags, mode)
	if err != sys.OK {
		return rv, nil, err
	}
	oo := core.NewBaseOpenObject(int(rv[0]))
	oo.OnRelease = func(sys.Ctx) { p.a.released <- 1 }
	return rv, oo, sys.OK
}

// fddanceWorld boots a registry with the fddance program.
func fddanceWorld(t *testing.T) *kernel.Kernel {
	t.Helper()
	reg := image.NewRegistry()
	reg.Register("fddance", libc.Main(func(lt *libc.T) int {
		lt.WriteFile("/tmp/mirror", []byte("m"), 0o644)
		fd, err := lt.Open("/tmp/mirror", sys.O_RDONLY, 0)
		if err != sys.OK {
			return 1
		}
		d1, _ := lt.Dup(fd)
		d2 := 10
		lt.Dup2(fd, d2)
		lt.Close(fd) // two aliases remain
		lt.Close(d1) // one alias remains
		b := make([]byte, 1)
		if n, err := lt.Read(d2, b); err != sys.OK || n != 1 || b[0] != 'm' {
			return 2 // the surviving alias must still work
		}
		lt.Close(d2) // last alias: release fires
		return 0
	}))
	k := kernel.New(reg)
	if err := k.InstallProgram("/bin/fddance", "fddance"); err != nil {
		t.Fatal(err)
	}
	return k
}

func TestSignalInterpositionChain(t *testing.T) {
	// Two layers: the lower rewrites SIGUSR1 → SIGUSR2; the upper counts
	// what it sees. Ordering: kernel → lower → upper → application.
	reg := image.NewRegistry()
	reg.Register("sigself", libc.Main(func(lt *libc.T) int {
		got := 0
		lt.Signal(sys.SIGUSR1, func(*libc.T, int) { got = 1 })
		lt.Signal(sys.SIGUSR2, func(*libc.T, int) { got = 2 })
		lt.Kill(lt.Getpid(), sys.SIGUSR1)
		lt.Printf("got=%d\n", got)
		return 0
	}))
	k := kernel.New(reg)
	k.InstallProgram("/bin/sigself", "sigself")

	rewrite := &sigRewriter{from: sys.SIGUSR1, to: sys.SIGUSR2}
	rewrite.Bind(rewrite)
	rewrite.RegisterAllSignals()
	var seen []int
	counter := &sigCounter{seen: &seen}
	counter.Bind(counter)
	counter.RegisterAllSignals()

	st, out, err := core.Run(k, []core.Agent{rewrite, counter}, "/bin/sigself", []string{"sigself"}, nil)
	if err != nil || sys.WExitStatus(st) != 0 {
		t.Fatalf("%v %#x %q", err, st, out)
	}
	if out != "got=2\n" {
		t.Fatalf("application saw %q, want the rewritten signal", out)
	}
	if len(seen) == 0 || seen[0] != sys.SIGUSR2 {
		t.Fatalf("upper layer saw %v, want the rewritten SIGUSR2 first", seen)
	}
}

type sigRewriter struct {
	core.Symbolic
	from, to int
}

func (a *sigRewriter) SignalUp(c sys.Ctx, sig, code int) int {
	if sig == a.from {
		return a.to
	}
	return sig
}

type sigCounter struct {
	core.Symbolic
	seen *[]int
}

func (a *sigCounter) SignalUp(c sys.Ctx, sig, code int) int {
	*a.seen = append(*a.seen, sig)
	return sig
}

func TestSignalSuppression(t *testing.T) {
	reg := image.NewRegistry()
	reg.Register("victim", libc.Main(func(lt *libc.T) int {
		lt.Kill(lt.Getpid(), sys.SIGTERM) // would terminate...
		lt.Printf("alive\n")
		return 0
	}))
	k := kernel.New(reg)
	k.InstallProgram("/bin/victim", "victim")

	shield := &sigShield{}
	shield.Bind(shield)
	shield.RegisterAllSignals()
	st, out, err := core.Run(k, []core.Agent{shield}, "/bin/victim", []string{"victim"}, nil)
	if err != nil || sys.WExitStatus(st) != 0 || out != "alive\n" {
		t.Fatalf("%v %#x %q", err, st, out)
	}
}

// sigShield suppresses SIGTERM before it reaches the application.
type sigShield struct{ core.Symbolic }

func (a *sigShield) SignalUp(c sys.Ctx, sig, code int) int {
	if sig == sys.SIGTERM {
		return 0
	}
	return sig
}

func TestDownWriteString(t *testing.T) {
	k := kernel.New(image.NewRegistry())
	p := k.NewProc()
	p.OpenConsole()
	writer := sys.HandlerFunc(func(c sys.Ctx, num int, a sys.Args) (sys.Retval, sys.Errno) {
		if e := core.DownWriteString(c, 1, "from the agent\n"); e != sys.OK {
			t.Errorf("DownWriteString: %v", e)
		}
		return core.Down(c, num, a)
	})
	layer := kernel.NewEmuLayer(writer)
	layer.Register(sys.SYS_getpid)
	p.PushEmulation(layer)
	p.Syscall(sys.SYS_getpid, sys.Args{})
	if got := k.Console().TakeOutput(); got != "from the agent\n" {
		t.Fatalf("console = %q", got)
	}
}
