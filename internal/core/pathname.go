package core

import "interpose/internal/sys"

// PathOp tells GetPN which kind of operation is resolving the pathname,
// so agents can treat lookups, creations and deletions differently.
type PathOp int

// Pathname resolution operations.
const (
	OpLookup PathOp = iota // read-only use of an existing object
	OpOpen                 // open (possibly creating)
	OpCreate               // creating a new name
	OpDelete               // removing a name
	OpExec                 // execve
)

// Pathname is the toolkit object representing a resolved pathname: the
// operations the system interface can perform on an object referenced by
// a pathname. The default implementation performs each operation on the
// same pathname string at the next-lower instance of the system interface;
// agent pathname objects change the pathname's interpretation.
type Pathname interface {
	// String returns the pathname to present to the layer below.
	String() string

	// Open opens the object; a non-nil OpenObject takes over the returned
	// descriptor's operations at the descriptor layer.
	Open(c sys.Ctx, flags int, mode uint32) (sys.Retval, OpenObject, sys.Errno)

	Stat(c sys.Ctx, statAddr sys.Word) (sys.Retval, sys.Errno)
	Lstat(c sys.Ctx, statAddr sys.Word) (sys.Retval, sys.Errno)
	Access(c sys.Ctx, mode int) (sys.Retval, sys.Errno)
	Chmod(c sys.Ctx, mode uint32) (sys.Retval, sys.Errno)
	Chown(c sys.Ctx, uid, gid sys.Word) (sys.Retval, sys.Errno)
	Utimes(c sys.Ctx, tvAddr sys.Word) (sys.Retval, sys.Errno)
	Truncate(c sys.Ctx, length int32) (sys.Retval, sys.Errno)
	Readlink(c sys.Ctx, buf sys.Word, n int) (sys.Retval, sys.Errno)
	Chdir(c sys.Ctx) (sys.Retval, sys.Errno)
	Chroot(c sys.Ctx) (sys.Retval, sys.Errno)
	Unlink(c sys.Ctx) (sys.Retval, sys.Errno)
	Rmdir(c sys.Ctx) (sys.Retval, sys.Errno)
	Mkdir(c sys.Ctx, mode uint32) (sys.Retval, sys.Errno)
	Mknod(c sys.Ctx, mode uint32, dev sys.Word) (sys.Retval, sys.Errno)
	Symlink(c sys.Ctx, target string) (sys.Retval, sys.Errno)
	Link(c sys.Ctx, newpn Pathname) (sys.Retval, sys.Errno)
	Rename(c sys.Ctx, to Pathname) (sys.Retval, sys.Errno)
	Exec(c sys.Ctx, argvAddr, envpAddr sys.Word) (sys.Retval, sys.Errno)
}

// PathnameHandler extends the symbolic interface with the pathname
// resolution hook. PathnameSet agents bind an object implementing it.
type PathnameHandler interface {
	SymbolicHandler
	// GetPN resolves a pathname string to a Pathname object. Supplying a
	// different GetPN changes the treatment of every pathname uniformly —
	// the central point for name-space transformation and reference data
	// collection.
	GetPN(c sys.Ctx, path string, op PathOp) (Pathname, sys.Errno)
}

// PathnameSet is the toolkit layer presenting the system interface
// organized around the pathname abstraction. Its default system call
// methods resolve their pathname arguments through GetPN and invoke the
// corresponding method on the resulting Pathname object.
type PathnameSet struct {
	DescriptorSet
	pself PathnameHandler
}

// BindPathnames wires the outermost agent object into both the symbolic
// dispatch path and the pathname resolution hook.
func (ps *PathnameSet) BindPathnames(self PathnameHandler) {
	ps.Bind(self)
	ps.pself = self
}

// GetPN is the default resolution: the pathname means what it says.
func (ps *PathnameSet) GetPN(c sys.Ctx, path string, op PathOp) (Pathname, sys.Errno) {
	return &BasePathname{P: path}, sys.OK
}

// RegisterPathCalls registers interest in every system call taking a
// pathname argument.
func (ps *PathnameSet) RegisterPathCalls() {
	for _, n := range PathSyscalls {
		ps.RegisterInterest(n)
	}
}

// PathSyscalls is the set of system calls with pathname arguments.
var PathSyscalls = []int{
	sys.SYS_open, sys.SYS_creat, sys.SYS_link, sys.SYS_unlink, sys.SYS_chdir,
	sys.SYS_mknod, sys.SYS_chmod, sys.SYS_chown, sys.SYS_access,
	sys.SYS_stat, sys.SYS_lstat, sys.SYS_symlink, sys.SYS_readlink,
	sys.SYS_execve, sys.SYS_chroot, sys.SYS_rename, sys.SYS_truncate,
	sys.SYS_mkdir, sys.SYS_rmdir, sys.SYS_utimes,
}

func (ps *PathnameSet) getpn(c sys.Ctx, path string, op PathOp) (Pathname, sys.Errno) {
	if ps.pself != nil {
		return ps.pself.GetPN(c, path, op)
	}
	return ps.GetPN(c, path, op)
}

// SysOpen resolves the pathname and opens the resulting object, recording
// any agent open object in the descriptor mirror.
func (ps *PathnameSet) SysOpen(c sys.Ctx, path string, flags int, mode uint32) (sys.Retval, sys.Errno) {
	pn, err := ps.getpn(c, path, OpOpen)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	rv, oo, err := pn.Open(c, flags, mode)
	if err == sys.OK && oo != nil {
		ps.SetObject(c.PID(), int(rv[0]), oo)
	}
	return rv, err
}

// SysCreat is open with create+truncate semantics, dispatched through the
// (possibly overridden) SysOpen.
func (ps *PathnameSet) SysCreat(c sys.Ctx, path string, mode uint32) (sys.Retval, sys.Errno) {
	const flags = sys.O_WRONLY | sys.O_CREAT | sys.O_TRUNC
	if ps.pself != nil {
		return ps.pself.SysOpen(c, path, flags, mode)
	}
	return ps.SysOpen(c, path, flags, mode)
}

// SysStat resolves and stats.
func (ps *PathnameSet) SysStat(c sys.Ctx, path string, statAddr sys.Word) (sys.Retval, sys.Errno) {
	pn, err := ps.getpn(c, path, OpLookup)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	return pn.Stat(c, statAddr)
}

// SysLstat resolves and lstats.
func (ps *PathnameSet) SysLstat(c sys.Ctx, path string, statAddr sys.Word) (sys.Retval, sys.Errno) {
	pn, err := ps.getpn(c, path, OpLookup)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	return pn.Lstat(c, statAddr)
}

// SysAccess resolves and checks access.
func (ps *PathnameSet) SysAccess(c sys.Ctx, path string, mode int) (sys.Retval, sys.Errno) {
	pn, err := ps.getpn(c, path, OpLookup)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	return pn.Access(c, mode)
}

// SysChmod resolves and changes mode.
func (ps *PathnameSet) SysChmod(c sys.Ctx, path string, mode uint32) (sys.Retval, sys.Errno) {
	pn, err := ps.getpn(c, path, OpLookup)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	return pn.Chmod(c, mode)
}

// SysChown resolves and changes ownership.
func (ps *PathnameSet) SysChown(c sys.Ctx, path string, uid, gid sys.Word) (sys.Retval, sys.Errno) {
	pn, err := ps.getpn(c, path, OpLookup)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	return pn.Chown(c, uid, gid)
}

// SysUtimes resolves and sets times.
func (ps *PathnameSet) SysUtimes(c sys.Ctx, path string, tvAddr sys.Word) (sys.Retval, sys.Errno) {
	pn, err := ps.getpn(c, path, OpLookup)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	return pn.Utimes(c, tvAddr)
}

// SysTruncate resolves and truncates.
func (ps *PathnameSet) SysTruncate(c sys.Ctx, path string, length int32) (sys.Retval, sys.Errno) {
	pn, err := ps.getpn(c, path, OpLookup)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	return pn.Truncate(c, length)
}

// SysReadlink resolves and reads the link target.
func (ps *PathnameSet) SysReadlink(c sys.Ctx, path string, buf sys.Word, n int) (sys.Retval, sys.Errno) {
	pn, err := ps.getpn(c, path, OpLookup)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	return pn.Readlink(c, buf, n)
}

// SysChdir resolves and changes directory.
func (ps *PathnameSet) SysChdir(c sys.Ctx, path string) (sys.Retval, sys.Errno) {
	pn, err := ps.getpn(c, path, OpLookup)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	return pn.Chdir(c)
}

// SysChroot resolves and changes the root.
func (ps *PathnameSet) SysChroot(c sys.Ctx, path string) (sys.Retval, sys.Errno) {
	pn, err := ps.getpn(c, path, OpLookup)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	return pn.Chroot(c)
}

// SysUnlink resolves and unlinks.
func (ps *PathnameSet) SysUnlink(c sys.Ctx, path string) (sys.Retval, sys.Errno) {
	pn, err := ps.getpn(c, path, OpDelete)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	return pn.Unlink(c)
}

// SysRmdir resolves and removes the directory.
func (ps *PathnameSet) SysRmdir(c sys.Ctx, path string) (sys.Retval, sys.Errno) {
	pn, err := ps.getpn(c, path, OpDelete)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	return pn.Rmdir(c)
}

// SysMkdir resolves and creates the directory.
func (ps *PathnameSet) SysMkdir(c sys.Ctx, path string, mode uint32) (sys.Retval, sys.Errno) {
	pn, err := ps.getpn(c, path, OpCreate)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	return pn.Mkdir(c, mode)
}

// SysMknod resolves and creates the node.
func (ps *PathnameSet) SysMknod(c sys.Ctx, path string, mode uint32, dev sys.Word) (sys.Retval, sys.Errno) {
	pn, err := ps.getpn(c, path, OpCreate)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	return pn.Mknod(c, mode, dev)
}

// SysSymlink resolves the link pathname and creates the symbolic link.
func (ps *PathnameSet) SysSymlink(c sys.Ctx, target, linkPath string) (sys.Retval, sys.Errno) {
	pn, err := ps.getpn(c, linkPath, OpCreate)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	return pn.Symlink(c, target)
}

// SysLink resolves both pathnames and links.
func (ps *PathnameSet) SysLink(c sys.Ctx, path, newPath string) (sys.Retval, sys.Errno) {
	pn, err := ps.getpn(c, path, OpLookup)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	newpn, err := ps.getpn(c, newPath, OpCreate)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	return pn.Link(c, newpn)
}

// SysRename resolves both pathnames and renames.
func (ps *PathnameSet) SysRename(c sys.Ctx, from, to string) (sys.Retval, sys.Errno) {
	pn, err := ps.getpn(c, from, OpDelete)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	topn, err := ps.getpn(c, to, OpCreate)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	return pn.Rename(c, topn)
}

// SysExecve resolves the image pathname and executes it.
func (ps *PathnameSet) SysExecve(c sys.Ctx, path string, argvAddr, envpAddr sys.Word) (sys.Retval, sys.Errno) {
	pn, err := ps.getpn(c, path, OpExec)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	return pn.Exec(c, argvAddr, envpAddr)
}

// BasePathname is the default Pathname: every operation is performed on
// the same pathname string at the next-lower system interface instance.
type BasePathname struct {
	P string
}

// String implements Pathname.
func (b *BasePathname) String() string { return b.P }

// Open opens the pathname below, with no agent open object.
func (b *BasePathname) Open(c sys.Ctx, flags int, mode uint32) (sys.Retval, OpenObject, sys.Errno) {
	rv, err := DownPath(c, sys.SYS_open, b.P, w(flags), mode)
	return rv, nil, err
}

// Stat stats the pathname below.
func (b *BasePathname) Stat(c sys.Ctx, statAddr sys.Word) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_stat, b.P, statAddr)
}

// Lstat lstats the pathname below.
func (b *BasePathname) Lstat(c sys.Ctx, statAddr sys.Word) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_lstat, b.P, statAddr)
}

// Access checks the pathname below.
func (b *BasePathname) Access(c sys.Ctx, mode int) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_access, b.P, w(mode))
}

// Chmod changes mode below.
func (b *BasePathname) Chmod(c sys.Ctx, mode uint32) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_chmod, b.P, mode)
}

// Chown changes ownership below.
func (b *BasePathname) Chown(c sys.Ctx, uid, gid sys.Word) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_chown, b.P, uid, gid)
}

// Utimes sets times below.
func (b *BasePathname) Utimes(c sys.Ctx, tvAddr sys.Word) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_utimes, b.P, tvAddr)
}

// Truncate truncates below.
func (b *BasePathname) Truncate(c sys.Ctx, length int32) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_truncate, b.P, sys.Word(length))
}

// Readlink reads the link below.
func (b *BasePathname) Readlink(c sys.Ctx, buf sys.Word, n int) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_readlink, b.P, buf, w(n))
}

// Chdir changes directory below.
func (b *BasePathname) Chdir(c sys.Ctx) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_chdir, b.P)
}

// Chroot changes the root below.
func (b *BasePathname) Chroot(c sys.Ctx) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_chroot, b.P)
}

// Unlink unlinks below.
func (b *BasePathname) Unlink(c sys.Ctx) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_unlink, b.P)
}

// Rmdir removes the directory below.
func (b *BasePathname) Rmdir(c sys.Ctx) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_rmdir, b.P)
}

// Mkdir creates the directory below.
func (b *BasePathname) Mkdir(c sys.Ctx, mode uint32) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_mkdir, b.P, mode)
}

// Mknod creates the node below.
func (b *BasePathname) Mknod(c sys.Ctx, mode uint32, dev sys.Word) (sys.Retval, sys.Errno) {
	return DownPath(c, sys.SYS_mknod, b.P, mode, dev)
}

// Symlink creates the symbolic link below.
func (b *BasePathname) Symlink(c sys.Ctx, target string) (sys.Retval, sys.Errno) {
	return DownPath2(c, sys.SYS_symlink, target, b.P)
}

// Link links to newpn below.
func (b *BasePathname) Link(c sys.Ctx, newpn Pathname) (sys.Retval, sys.Errno) {
	return DownPath2(c, sys.SYS_link, b.P, newpn.String())
}

// Rename renames to the target pathname below.
func (b *BasePathname) Rename(c sys.Ctx, to Pathname) (sys.Retval, sys.Errno) {
	return DownPath2(c, sys.SYS_rename, b.P, to.String())
}

// Exec executes the pathname via the toolkit's execve reimplementation.
func (b *BasePathname) Exec(c sys.Ctx, argvAddr, envpAddr sys.Word) (sys.Retval, sys.Errno) {
	return ExecveFromPrimitives(c, b.P, argvAddr, envpAddr)
}

var _ Pathname = (*BasePathname)(nil)
