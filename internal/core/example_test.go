package core_test

import (
	"fmt"

	"interpose/internal/agents/monitor"
	"interpose/internal/apps"
	"interpose/internal/core"
	"interpose/internal/sys"
)

// ExampleRun runs an unmodified program under a monitoring agent: the
// program's output is unchanged, while the agent observes every system
// call it made.
func ExampleRun() {
	k, err := apps.NewWorld()
	if err != nil {
		panic(err)
	}
	agent := monitor.New(false)

	status, out, err := core.Run(k, []core.Agent{agent},
		"/bin/echo", []string{"echo", "observed"}, nil)
	if err != nil {
		panic(err)
	}

	fmt.Printf("exit %d, output %q\n", sys.WExitStatus(status), out)
	fmt.Printf("agent saw the write: %v\n", agent.Count(sys.SYS_write) > 0)
	fmt.Printf("agent saw the exit:  %v\n", agent.Count(sys.SYS_exit) == 1)
	// Output:
	// exit 0, output "observed\n"
	// agent saw the write: true
	// agent saw the exit:  true
}
