package core

import (
	"sync"

	"interpose/internal/sys"
)

// DescriptorSet is the toolkit layer presenting the system interface
// organized around the descriptor name space. It mirrors each client
// process's descriptor table, mapping descriptor numbers to OpenObjects
// for the descriptors an agent has taken over; descriptors without an
// object pass through untouched.
//
// The mirror is maintained across dup, dup2, fcntl F_DUPFD, close, fork
// (via the child-initialization hook) and process exit. One DescriptorSet
// serves every process running under the agent, as agents do in the paper
// (Figure 1-4); it is therefore safe for concurrent use.
type DescriptorSet struct {
	Symbolic

	mu     sync.Mutex
	tables map[int]map[int]OpenObject // pid → fd → object
}

// initTables lazily allocates the table map.
func (ds *DescriptorSet) initTables() {
	if ds.tables == nil {
		ds.tables = make(map[int]map[int]OpenObject)
	}
}

// SetObject maps descriptor fd of process pid to an open object (which the
// table takes no new reference on: the caller transfers its reference).
func (ds *DescriptorSet) SetObject(pid, fd int, oo OpenObject) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.initTables()
	t := ds.tables[pid]
	if t == nil {
		t = make(map[int]OpenObject)
		ds.tables[pid] = t
	}
	t[fd] = oo
}

// Object returns the open object mapped at descriptor fd of process pid.
func (ds *DescriptorSet) Object(pid, fd int) OpenObject {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.tables[pid][fd]
}

// takeObject removes and returns the mapping.
func (ds *DescriptorSet) takeObject(pid, fd int) OpenObject {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	t := ds.tables[pid]
	oo := t[fd]
	delete(t, fd)
	return oo
}

// RegisterDescriptorCalls registers interest in every system call that
// names a descriptor, so the mirror stays coherent.
func (ds *DescriptorSet) RegisterDescriptorCalls() {
	for _, n := range DescriptorSyscalls {
		ds.RegisterInterest(n)
	}
}

// DescriptorSyscalls is the set of system calls taking descriptor
// arguments that the descriptor layer must observe.
var DescriptorSyscalls = []int{
	sys.SYS_read, sys.SYS_write, sys.SYS_close, sys.SYS_lseek, sys.SYS_dup,
	sys.SYS_dup2, sys.SYS_fcntl, sys.SYS_fstat, sys.SYS_ftruncate,
	sys.SYS_flock, sys.SYS_ioctl, sys.SYS_fsync, sys.SYS_fchdir,
	sys.SYS_getdirentries, sys.SYS_exit, sys.SYS_fork,
}

// InitChild runs in a freshly forked child: the child inherits the
// parent's descriptor mappings, with a reference added for each.
func (ds *DescriptorSet) InitChild(c sys.Ctx) {
	type parented interface{ PPID() int }
	pp, ok := c.(parented)
	if !ok {
		return
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.initTables()
	parent := ds.tables[pp.PPID()]
	if len(parent) == 0 {
		return
	}
	child := make(map[int]OpenObject, len(parent))
	for fd, oo := range parent {
		oo.Ref()
		child[fd] = oo
	}
	ds.tables[c.PID()] = child
}

// SysExit releases the exiting process's open objects while a call
// context still exists — the exit-time flush of the process's implicit
// closes. (A process killed by a signal never reaches here; its objects
// are Forgotten by ProcExit, and any buffered agent state is lost, just
// as user-space buffers are on a real system.)
func (ds *DescriptorSet) SysExit(c sys.Ctx, status int) (sys.Retval, sys.Errno) {
	ds.mu.Lock()
	t := ds.tables[c.PID()]
	delete(ds.tables, c.PID())
	ds.mu.Unlock()
	for _, oo := range t {
		oo.Unref(c)
	}
	return ds.Symbolic.SysExit(c, status)
}

// ProcExit drops a dead process's mappings.
func (ds *DescriptorSet) ProcExit(pid int) {
	ds.mu.Lock()
	t := ds.tables[pid]
	delete(ds.tables, pid)
	ds.mu.Unlock()
	for _, oo := range t {
		oo.Forget()
	}
}

// SysRead routes read through a mapped object.
func (ds *DescriptorSet) SysRead(c sys.Ctx, fd int, buf sys.Word, cnt int) (sys.Retval, sys.Errno) {
	if oo := ds.Object(c.PID(), fd); oo != nil {
		return oo.Read(c, fd, buf, cnt)
	}
	return ds.Symbolic.SysRead(c, fd, buf, cnt)
}

// SysWrite routes write through a mapped object.
func (ds *DescriptorSet) SysWrite(c sys.Ctx, fd int, buf sys.Word, cnt int) (sys.Retval, sys.Errno) {
	if oo := ds.Object(c.PID(), fd); oo != nil {
		return oo.Write(c, fd, buf, cnt)
	}
	return ds.Symbolic.SysWrite(c, fd, buf, cnt)
}

// SysLseek routes lseek through a mapped object.
func (ds *DescriptorSet) SysLseek(c sys.Ctx, fd int, off int32, whence int) (sys.Retval, sys.Errno) {
	if oo := ds.Object(c.PID(), fd); oo != nil {
		return oo.Lseek(c, fd, off, whence)
	}
	return ds.Symbolic.SysLseek(c, fd, off, whence)
}

// SysFstat routes fstat through a mapped object.
func (ds *DescriptorSet) SysFstat(c sys.Ctx, fd int, statAddr sys.Word) (sys.Retval, sys.Errno) {
	if oo := ds.Object(c.PID(), fd); oo != nil {
		return oo.Fstat(c, fd, statAddr)
	}
	return ds.Symbolic.SysFstat(c, fd, statAddr)
}

// SysFtruncate routes ftruncate through a mapped object.
func (ds *DescriptorSet) SysFtruncate(c sys.Ctx, fd int, length int32) (sys.Retval, sys.Errno) {
	if oo := ds.Object(c.PID(), fd); oo != nil {
		return oo.Ftruncate(c, fd, length)
	}
	return ds.Symbolic.SysFtruncate(c, fd, length)
}

// SysFlock routes flock through a mapped object.
func (ds *DescriptorSet) SysFlock(c sys.Ctx, fd, op int) (sys.Retval, sys.Errno) {
	if oo := ds.Object(c.PID(), fd); oo != nil {
		return oo.Flock(c, fd, op)
	}
	return ds.Symbolic.SysFlock(c, fd, op)
}

// SysIoctl routes ioctl through a mapped object.
func (ds *DescriptorSet) SysIoctl(c sys.Ctx, fd int, req, arg sys.Word) (sys.Retval, sys.Errno) {
	if oo := ds.Object(c.PID(), fd); oo != nil {
		return oo.Ioctl(c, fd, req, arg)
	}
	return ds.Symbolic.SysIoctl(c, fd, req, arg)
}

// SysFsync routes fsync through a mapped object.
func (ds *DescriptorSet) SysFsync(c sys.Ctx, fd int) (sys.Retval, sys.Errno) {
	if oo := ds.Object(c.PID(), fd); oo != nil {
		return oo.Fsync(c, fd)
	}
	return ds.Symbolic.SysFsync(c, fd)
}

// SysFchdir routes fchdir through a mapped object.
func (ds *DescriptorSet) SysFchdir(c sys.Ctx, fd int) (sys.Retval, sys.Errno) {
	if oo := ds.Object(c.PID(), fd); oo != nil {
		return oo.Fchdir(c, fd)
	}
	return ds.Symbolic.SysFchdir(c, fd)
}

// SysGetdirentries routes getdirentries through a mapped object.
func (ds *DescriptorSet) SysGetdirentries(c sys.Ctx, fd int, buf sys.Word, nbytes int, basep sys.Word) (sys.Retval, sys.Errno) {
	if oo := ds.Object(c.PID(), fd); oo != nil {
		return oo.Getdirentries(c, fd, buf, nbytes, basep)
	}
	return ds.Symbolic.SysGetdirentries(c, fd, buf, nbytes, basep)
}

// SysClose closes the underlying descriptor and releases any mapping.
func (ds *DescriptorSet) SysClose(c sys.Ctx, fd int) (sys.Retval, sys.Errno) {
	rv, err := ds.Symbolic.SysClose(c, fd)
	if err == sys.OK {
		if oo := ds.takeObject(c.PID(), fd); oo != nil {
			oo.Unref(c)
		}
	}
	return rv, err
}

// SysDup duplicates a descriptor, aliasing any mapped object.
func (ds *DescriptorSet) SysDup(c sys.Ctx, fd int) (sys.Retval, sys.Errno) {
	rv, err := ds.Symbolic.SysDup(c, fd)
	if err == sys.OK {
		if oo := ds.Object(c.PID(), fd); oo != nil {
			oo.Ref()
			ds.SetObject(c.PID(), int(rv[0]), oo)
		}
	}
	return rv, err
}

// SysDup2 duplicates onto a specific descriptor, releasing any mapping at
// the target and aliasing any mapping at the source.
func (ds *DescriptorSet) SysDup2(c sys.Ctx, oldfd, newfd int) (sys.Retval, sys.Errno) {
	if oldfd != newfd {
		if victim := ds.takeObject(c.PID(), newfd); victim != nil {
			victim.Unref(c)
		}
	}
	rv, err := ds.Symbolic.SysDup2(c, oldfd, newfd)
	if err == sys.OK && oldfd != newfd {
		if oo := ds.Object(c.PID(), oldfd); oo != nil {
			oo.Ref()
			ds.SetObject(c.PID(), newfd, oo)
		}
	}
	return rv, err
}

// SysFcntl tracks F_DUPFD aliases.
func (ds *DescriptorSet) SysFcntl(c sys.Ctx, fd, cmd int, arg sys.Word) (sys.Retval, sys.Errno) {
	rv, err := ds.Symbolic.SysFcntl(c, fd, cmd, arg)
	if err == sys.OK && cmd == sys.F_DUPFD {
		if oo := ds.Object(c.PID(), fd); oo != nil {
			oo.Ref()
			ds.SetObject(c.PID(), int(rv[0]), oo)
		}
	}
	return rv, err
}
