package core

import (
	"interpose/internal/image"
	"interpose/internal/sys"
)

// SysExecve takes the default action for execve. Unlike the other calls,
// the default cannot simply be passed down: as in the paper, execve "must
// be completely reimplemented by the toolkit from lower-level primitives",
// because the underlying implementation's execve would discard the state
// an agent needs preserved. The reimplementation individually performs the
// steps a single execve normally bundles: reading the program file,
// closing close-on-exec descriptors, resetting signal handlers, clearing
// the address space, loading the image, building the argument stack, and
// transferring control. This is why execve under a symbolic-layer agent
// costs roughly twice as much as without one (Table 3-5).
func (s *Symbolic) SysExecve(c sys.Ctx, path string, argvAddr, envpAddr sys.Word) (sys.Retval, sys.Errno) {
	return ExecveFromPrimitives(c, path, argvAddr, envpAddr)
}

// ReadWordVec decodes a NULL-terminated vector of string pointers from the
// client's address space.
func ReadWordVec(c sys.Ctx, addr sys.Word) ([]string, sys.Errno) {
	if addr == 0 {
		return nil, sys.OK
	}
	var out []string
	for i := 0; ; i++ {
		if i > 1024 {
			return nil, sys.E2BIG
		}
		var b [4]byte
		if e := c.CopyIn(addr+sys.Word(4*i), b[:]); e != sys.OK {
			return nil, e
		}
		ptr := sys.Word(b[0]) | sys.Word(b[1])<<8 | sys.Word(b[2])<<16 | sys.Word(b[3])<<24
		if ptr == 0 {
			return out, sys.OK
		}
		str, e := c.CopyInString(ptr, sys.ArgMax)
		if e != sys.OK {
			return nil, e
		}
		out = append(out, str)
	}
}

// readFileDown reads the whole file at path through downcalls, staging the
// I/O in the client's emulator segment.
func readFileDown(c sys.Ctx, path string) ([]byte, sys.Errno) {
	rv, err := DownPath(c, sys.SYS_open, path, sys.O_RDONLY)
	if err != sys.OK {
		return nil, err
	}
	fd := rv[0]
	defer Down(c, sys.SYS_close, sys.Args{fd})
	const chunk = 16 * 1024
	bufAddr, err := StageAlloc(c, chunk)
	if err != sys.OK {
		return nil, err
	}
	var data []byte
	for {
		rv, err := Down(c, sys.SYS_read, sys.Args{fd, bufAddr, chunk})
		if err != sys.OK {
			return nil, err
		}
		n := int(rv[0])
		if n == 0 {
			return data, sys.OK
		}
		b := make([]byte, n)
		if e := c.CopyIn(bufAddr, b); e != sys.OK {
			return nil, e
		}
		data = append(data, b...)
	}
}

// ExecveFromPrimitives is the toolkit's execve: every step performed
// individually through downcalls and machine primitives, preserving the
// installed agent layers across the exec.
func ExecveFromPrimitives(c sys.Ctx, path string, argvAddr, envpAddr sys.Word) (sys.Retval, sys.Errno) {
	ep, ok := c.(execProc)
	if !ok {
		// Not running on the kernel's machine contexts; let the layer
		// below deal with it.
		return DownPath(c, sys.SYS_execve, path, argvAddr, envpAddr)
	}

	// Gather everything from the old address space before clearing it.
	argv, err := ReadWordVec(c, argvAddr)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	envp, err := ReadWordVec(c, envpAddr)
	if err != sys.OK {
		return sys.Retval{}, err
	}

	// Resolve the image, following "#!" interpreters.
	var entry image.Entry
	for depth := 0; ; depth++ {
		if depth > 4 {
			return sys.Retval{}, sys.ENOEXEC
		}
		if _, err := DownPath(c, sys.SYS_access, path, sys.X_OK); err != sys.OK {
			return sys.Retval{}, err
		}
		data, err := readFileDown(c, path)
		if err != sys.OK {
			return sys.Retval{}, err
		}
		if name, ok := image.ParseHeader(data); ok {
			e, found := ep.LookupImage(name)
			if !found {
				return sys.Retval{}, sys.ENOEXEC
			}
			entry = e
			if len(argv) == 0 {
				argv = []string{path}
			}
			break
		}
		if interp, arg, ok := image.ParseInterpreter(data); ok {
			newArgv := []string{interp}
			if arg != "" {
				newArgv = append(newArgv, arg)
			}
			newArgv = append(newArgv, path)
			if len(argv) > 1 {
				newArgv = append(newArgv, argv[1:]...)
			}
			argv = newArgv
			path = interp
			continue
		}
		return sys.Retval{}, sys.ENOEXEC
	}

	// Close close-on-exec descriptors, one fcntl query at a time.
	for fd := 0; fd < sys.OpenMax; fd++ {
		rv, err := Down(c, sys.SYS_fcntl, sys.Args{sys.Word(fd), sys.F_GETFD})
		if err != sys.OK {
			continue // closed slot
		}
		if rv[0]&sys.FD_CLOEXEC != 0 {
			Down(c, sys.SYS_close, sys.Args{sys.Word(fd)})
		}
	}

	// Reset caught signal handlers to the default action; ignored
	// dispositions are preserved, as execve specifies.
	osvAddr, err := StageAlloc(c, sys.SigvecSize)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	dflAddr, err := StageBytes(c, encodeSigvec(sys.Sigvec{Handler: sys.SIG_DFL}))
	if err != sys.OK {
		return sys.Retval{}, err
	}
	for sig := 1; sig < sys.NSIG; sig++ {
		if sig == sys.SIGKILL || sig == sys.SIGSTOP {
			continue
		}
		if _, err := Down(c, sys.SYS_sigvec, sys.Args{sys.Word(sig), 0, osvAddr}); err != sys.OK {
			continue
		}
		var b [sys.SigvecSize]byte
		if e := c.CopyIn(osvAddr, b[:]); e != sys.OK {
			continue
		}
		sv := sys.DecodeSigvec(b[:])
		if sv.Handler != sys.SIG_DFL && sv.Handler != sys.SIG_IGN {
			Down(c, sys.SYS_sigvec, sys.Args{sys.Word(sig), dflAddr, 0})
		}
	}

	// Clear the old image, build the new argument stack, transfer control.
	base := path
	for i := len(base) - 1; i >= 0; i-- {
		if base[i] == '/' {
			base = base[i+1:]
			break
		}
	}
	ep.SetComm(base)
	ep.ResetAS()
	sp, errno := image.SetupStack(ep, argv, envp)
	if errno != sys.OK {
		// The old image is already gone; nothing to return to.
		Down(c, sys.SYS_exit, sys.Args{127})
		return sys.Retval{}, errno
	}
	ep.SetInitialSP(sp)
	ep.Exec(entry) // does not return
	return sys.Retval{}, sys.OK
}

func encodeSigvec(sv sys.Sigvec) []byte {
	b := make([]byte, sys.SigvecSize)
	sv.Encode(b)
	return b
}
