package core

import (
	"sync/atomic"

	"interpose/internal/sys"
)

// OpenObject is the toolkit's reference-counted open object: the thing a
// descriptor refers to. The descriptor layer routes the descriptor-taking
// system calls of a mapped descriptor to its OpenObject's methods, whose
// default implementations perform the operation on an underlying
// descriptor of the next-lower system interface instance.
//
// The reference count tracks descriptor aliases (dup, dup2, F_DUPFD, and
// fork inheritance), exactly as the kernel's own file table does.
type OpenObject interface {
	// Ref adds a descriptor reference.
	Ref()
	// Unref drops a reference on explicit close; the final drop releases
	// underlying resources through downcalls on c.
	Unref(c sys.Ctx)
	// Forget drops a reference without a call context (the owning process
	// died; the kernel already closed its underlying descriptors).
	Forget()

	// Each operation receives the descriptor number the call arrived on:
	// dup, dup2 and fork create aliases, and the underlying open file is
	// reached through whichever alias the client used.
	Read(c sys.Ctx, fd int, buf sys.Word, cnt int) (sys.Retval, sys.Errno)
	Write(c sys.Ctx, fd int, buf sys.Word, cnt int) (sys.Retval, sys.Errno)
	Lseek(c sys.Ctx, fd int, off int32, whence int) (sys.Retval, sys.Errno)
	Fstat(c sys.Ctx, fd int, statAddr sys.Word) (sys.Retval, sys.Errno)
	Ftruncate(c sys.Ctx, fd int, length int32) (sys.Retval, sys.Errno)
	Flock(c sys.Ctx, fd int, op int) (sys.Retval, sys.Errno)
	Ioctl(c sys.Ctx, fd int, req, arg sys.Word) (sys.Retval, sys.Errno)
	Fsync(c sys.Ctx, fd int) (sys.Retval, sys.Errno)
	Fchdir(c sys.Ctx, fd int) (sys.Retval, sys.Errno)
	Getdirentries(c sys.Ctx, fd int, buf sys.Word, nbytes int, basep sys.Word) (sys.Retval, sys.Errno)
}

// BaseOpenObject implements OpenObject over an underlying descriptor: each
// operation performs the same operation on the next-lower instance of the
// system interface. Agent open objects embed it and override what they
// change.
type BaseOpenObject struct {
	FD   int // the underlying descriptor number
	refs int32

	// OnRelease, if set, runs through the final Unref (with a context).
	OnRelease func(c sys.Ctx)
}

// NewBaseOpenObject returns an open object over underlying descriptor fd,
// with one reference held.
func NewBaseOpenObject(fd int) *BaseOpenObject {
	return &BaseOpenObject{FD: fd, refs: 1}
}

// Ref implements OpenObject.
func (o *BaseOpenObject) Ref() { atomic.AddInt32(&o.refs, 1) }

// Refs returns the current reference count (for tests and invariants).
func (o *BaseOpenObject) Refs() int { return int(atomic.LoadInt32(&o.refs)) }

// Unref implements OpenObject.
func (o *BaseOpenObject) Unref(c sys.Ctx) {
	if atomic.AddInt32(&o.refs, -1) == 0 && o.OnRelease != nil {
		o.OnRelease(c)
	}
}

// Forget implements OpenObject.
func (o *BaseOpenObject) Forget() { atomic.AddInt32(&o.refs, -1) }

// Read performs read on the arriving descriptor below.
func (o *BaseOpenObject) Read(c sys.Ctx, fd int, buf sys.Word, cnt int) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_read, sys.Args{w(fd), buf, w(cnt)})
}

// Write performs write on the arriving descriptor below.
func (o *BaseOpenObject) Write(c sys.Ctx, fd int, buf sys.Word, cnt int) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_write, sys.Args{w(fd), buf, w(cnt)})
}

// Lseek repositions the arriving descriptor below.
func (o *BaseOpenObject) Lseek(c sys.Ctx, fd int, off int32, whence int) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_lseek, sys.Args{w(fd), sys.Word(off), w(whence)})
}

// Fstat stats the arriving descriptor below.
func (o *BaseOpenObject) Fstat(c sys.Ctx, fd int, statAddr sys.Word) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_fstat, sys.Args{w(fd), statAddr})
}

// Ftruncate truncates through the arriving descriptor below.
func (o *BaseOpenObject) Ftruncate(c sys.Ctx, fd int, length int32) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_ftruncate, sys.Args{w(fd), sys.Word(length)})
}

// Flock locks through the arriving descriptor below.
func (o *BaseOpenObject) Flock(c sys.Ctx, fd int, op int) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_flock, sys.Args{w(fd), w(op)})
}

// Ioctl controls the arriving descriptor's device below.
func (o *BaseOpenObject) Ioctl(c sys.Ctx, fd int, req, arg sys.Word) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_ioctl, sys.Args{w(fd), req, arg})
}

// Fsync syncs the arriving descriptor below.
func (o *BaseOpenObject) Fsync(c sys.Ctx, fd int) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_fsync, sys.Args{w(fd)})
}

// Fchdir changes directory through the arriving descriptor below.
func (o *BaseOpenObject) Fchdir(c sys.Ctx, fd int) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_fchdir, sys.Args{w(fd)})
}

// Getdirentries reads directory records through the arriving descriptor.
func (o *BaseOpenObject) Getdirentries(c sys.Ctx, fd int, buf sys.Word, nbytes int, basep sys.Word) (sys.Retval, sys.Errno) {
	return Down(c, sys.SYS_getdirentries, sys.Args{w(fd), buf, w(nbytes), basep})
}

var _ OpenObject = (*BaseOpenObject)(nil)
