package apps

import (
	"strings"

	"interpose/internal/libc"
	"interpose/internal/sys"
)

// mkMain is a make subset: variables (NAME = value, $(NAME) expansion),
// rules with dependencies and tab-indented command lines, timestamp
// comparison via stat, and recursive dependency builds. Commands are run
// by fork/exec directly, or through /bin/sh -c when they contain shell
// syntax. It is the driver of the paper's "make 8 programs" workload
// (Table 3-3): a collection of related processes making heavy use of
// system calls.
func mkMain(t *libc.T) int {
	file := "Makefile"
	var goals []string
	args := t.Args[1:]
	for i := 0; i < len(args); i++ {
		if args[i] == "-f" && i+1 < len(args) {
			file = args[i+1]
			i++
			continue
		}
		goals = append(goals, args[i])
	}

	m := &mkFile{t: t, vars: map[string]string{}, rules: map[string]*mkRule{}}
	if !m.parse(file) {
		return 2
	}
	if len(goals) == 0 {
		if m.first == "" {
			t.Errorf("%s: no targets", file)
			return 2
		}
		goals = []string{m.first}
	}
	for _, g := range goals {
		switch m.build(g, 0) {
		case mkErr:
			return 1
		}
	}
	return 0
}

type mkRule struct {
	target string
	deps   []string
	cmds   []string
	done   bool
	result mkStatus
}

type mkFile struct {
	t     *libc.T
	vars  map[string]string
	rules map[string]*mkRule
	first string
}

type mkStatus int

const (
	mkUpToDate mkStatus = iota
	mkRebuilt
	mkErr
)

// parse reads the makefile.
func (m *mkFile) parse(path string) bool {
	f, err := m.t.Fopen(path, "r")
	if err != sys.OK {
		m.t.Errorf("%s: %v", path, err)
		return false
	}
	defer f.Close()
	var cur *mkRule
	for {
		line, ok := f.ReadLine()
		if !ok {
			break
		}
		if strings.HasPrefix(line, "\t") {
			if cur == nil {
				m.t.Errorf("%s: command before rule", path)
				return false
			}
			cmd := strings.TrimSpace(m.expand(line))
			if cmd != "" {
				cur.cmds = append(cur.cmds, cmd)
			}
			continue
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		if eq := strings.Index(trimmed, "="); eq > 0 && !strings.Contains(trimmed[:eq], ":") {
			name := strings.TrimSpace(trimmed[:eq])
			m.vars[name] = strings.TrimSpace(m.expand(trimmed[eq+1:]))
			continue
		}
		colon := strings.Index(trimmed, ":")
		if colon < 0 {
			m.t.Errorf("%s: bad line %q", path, trimmed)
			return false
		}
		targets := libc.Fields(m.expand(trimmed[:colon]))
		deps := libc.Fields(m.expand(trimmed[colon+1:]))
		for _, tg := range targets {
			r := &mkRule{target: tg, deps: deps}
			m.rules[tg] = r
			if m.first == "" {
				m.first = tg
			}
			cur = r
		}
	}
	return true
}

// expand substitutes $(VAR) references.
func (m *mkFile) expand(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '$' && i+1 < len(s) && s[i+1] == '(' {
			end := strings.IndexByte(s[i+2:], ')')
			if end >= 0 {
				b.WriteString(m.vars[s[i+2:i+2+end]])
				i += 2 + end
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// mtime returns a file's modification time, ok=false if absent.
func (m *mkFile) mtime(path string) (sys.Timeval, bool) {
	st, err := m.t.Stat(path)
	if err != sys.OK {
		return sys.Timeval{}, false
	}
	return st.Mtime, true
}

func newer(a, b sys.Timeval) bool {
	return a.Sec > b.Sec || (a.Sec == b.Sec && a.Usec > b.Usec)
}

// build brings target up to date, building dependencies first.
func (m *mkFile) build(target string, depth int) mkStatus {
	if depth > 64 {
		m.t.Errorf("dependency loop at %s", target)
		return mkErr
	}
	r := m.rules[target]
	if r == nil {
		if _, ok := m.mtime(target); ok {
			return mkUpToDate
		}
		m.t.Errorf("don't know how to make %s", target)
		return mkErr
	}
	if r.done {
		return r.result
	}
	r.done = true

	depsRebuilt := false
	for _, d := range r.deps {
		switch m.build(d, depth+1) {
		case mkErr:
			r.result = mkErr
			return mkErr
		case mkRebuilt:
			depsRebuilt = true
		}
	}

	tgtTime, exists := m.mtime(target)
	need := !exists || depsRebuilt
	if exists && !need {
		for _, d := range r.deps {
			if dt, ok := m.mtime(d); ok && newer(dt, tgtTime) {
				need = true
				break
			}
		}
	}
	if !need {
		r.result = mkUpToDate
		return mkUpToDate
	}

	for _, cmd := range r.cmds {
		m.t.Printf("%s\n", cmd)
		m.t.Stdout.Flush()
		status, err := m.runCmd(cmd)
		if err != sys.OK || status != 0 {
			m.t.Errorf("*** %s: exit %d", target, status)
			r.result = mkErr
			return mkErr
		}
	}
	r.result = mkRebuilt
	return mkRebuilt
}

// runCmd executes one command line.
func (m *mkFile) runCmd(cmd string) (int, sys.Errno) {
	var argv []string
	if strings.ContainsAny(cmd, "|<>;&$'\"") {
		argv = []string{"sh", "-c", cmd}
	} else {
		argv = libc.Fields(cmd)
	}
	if len(argv) == 0 {
		return 0, sys.OK
	}
	path, err := m.t.SearchPath(argv[0])
	if err != sys.OK {
		m.t.Errorf("%s: command not found", argv[0])
		return 127, sys.OK
	}
	st, e := m.t.System(path, argv)
	if e != sys.OK {
		return 127, e
	}
	if sys.WIfExited(st) {
		return sys.WExitStatus(st), sys.OK
	}
	return 128 + sys.WTermSig(st), sys.OK
}
