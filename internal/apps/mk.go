package apps

import (
	"strconv"
	"strings"

	"interpose/internal/libc"
	"interpose/internal/sys"
)

// mkMain is a make subset: variables (NAME = value, $(NAME) expansion),
// rules with dependencies and tab-indented command lines, timestamp
// comparison via stat, and recursive dependency builds. Commands are run
// by fork/exec directly, or through /bin/sh -c when they contain shell
// syntax. It is the driver of the paper's "make 8 programs" workload
// (Table 3-3): a collection of related processes making heavy use of
// system calls. With -j N the top-level goal's dependencies build in up
// to N child processes at once, which exercises true kernel concurrency:
// each job is a separate process issuing stat/open/fork/exec against
// shared directories.
func mkMain(t *libc.T) int {
	file := "Makefile"
	jobs := 1
	var goals []string
	args := t.Args[1:]
	for i := 0; i < len(args); i++ {
		switch {
		case args[i] == "-f" && i+1 < len(args):
			file = args[i+1]
			i++
		case args[i] == "-j" && i+1 < len(args):
			jobs = mkAtoi(args[i+1])
			i++
		case strings.HasPrefix(args[i], "-j") && len(args[i]) > 2:
			jobs = mkAtoi(args[i][2:])
		default:
			goals = append(goals, args[i])
		}
	}
	if jobs < 1 {
		jobs = 1
	}

	m := &mkFile{t: t, vars: map[string]string{}, rules: map[string]*mkRule{}}
	if !m.parse(file) {
		return 2
	}
	if len(goals) == 0 {
		if m.first == "" {
			t.Errorf("%s: no targets", file)
			return 2
		}
		goals = []string{m.first}
	}
	for _, g := range goals {
		st := mkUpToDate
		if jobs > 1 {
			st = m.buildParallel(g, jobs)
		} else {
			st = m.build(g, 0)
		}
		switch st {
		case mkErr:
			return 1
		}
	}
	return 0
}

func mkAtoi(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 1
	}
	return n
}

type mkRule struct {
	target string
	deps   []string
	cmds   []string
	done   bool
	result mkStatus
}

type mkFile struct {
	t     *libc.T
	vars  map[string]string
	rules map[string]*mkRule
	first string
}

type mkStatus int

const (
	mkUpToDate mkStatus = iota
	mkRebuilt
	mkErr
)

// parse reads the makefile.
func (m *mkFile) parse(path string) bool {
	f, err := m.t.Fopen(path, "r")
	if err != sys.OK {
		m.t.Errorf("%s: %v", path, err)
		return false
	}
	defer f.Close()
	var cur *mkRule
	for {
		line, ok := f.ReadLine()
		if !ok {
			break
		}
		if strings.HasPrefix(line, "\t") {
			if cur == nil {
				m.t.Errorf("%s: command before rule", path)
				return false
			}
			cmd := strings.TrimSpace(m.expand(line))
			if cmd != "" {
				cur.cmds = append(cur.cmds, cmd)
			}
			continue
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		if eq := strings.Index(trimmed, "="); eq > 0 && !strings.Contains(trimmed[:eq], ":") {
			name := strings.TrimSpace(trimmed[:eq])
			m.vars[name] = strings.TrimSpace(m.expand(trimmed[eq+1:]))
			continue
		}
		colon := strings.Index(trimmed, ":")
		if colon < 0 {
			m.t.Errorf("%s: bad line %q", path, trimmed)
			return false
		}
		targets := libc.Fields(m.expand(trimmed[:colon]))
		deps := libc.Fields(m.expand(trimmed[colon+1:]))
		for _, tg := range targets {
			r := &mkRule{target: tg, deps: deps}
			m.rules[tg] = r
			if m.first == "" {
				m.first = tg
			}
			cur = r
		}
	}
	return true
}

// expand substitutes $(VAR) references.
func (m *mkFile) expand(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '$' && i+1 < len(s) && s[i+1] == '(' {
			end := strings.IndexByte(s[i+2:], ')')
			if end >= 0 {
				b.WriteString(m.vars[s[i+2:i+2+end]])
				i += 2 + end
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// mtime returns a file's modification time, ok=false if absent.
func (m *mkFile) mtime(path string) (sys.Timeval, bool) {
	st, err := m.t.Stat(path)
	if err != sys.OK {
		return sys.Timeval{}, false
	}
	return st.Mtime, true
}

func newer(a, b sys.Timeval) bool {
	return a.Sec > b.Sec || (a.Sec == b.Sec && a.Usec > b.Usec)
}

// build brings target up to date, building dependencies first.
func (m *mkFile) build(target string, depth int) mkStatus {
	if depth > 64 {
		m.t.Errorf("dependency loop at %s", target)
		return mkErr
	}
	r := m.rules[target]
	if r == nil {
		if _, ok := m.mtime(target); ok {
			return mkUpToDate
		}
		m.t.Errorf("don't know how to make %s", target)
		return mkErr
	}
	if r.done {
		return r.result
	}
	r.done = true

	depsRebuilt := false
	for _, d := range r.deps {
		switch m.build(d, depth+1) {
		case mkErr:
			r.result = mkErr
			return mkErr
		case mkRebuilt:
			depsRebuilt = true
		}
	}

	tgtTime, exists := m.mtime(target)
	need := !exists || depsRebuilt
	if exists && !need {
		for _, d := range r.deps {
			if dt, ok := m.mtime(d); ok && newer(dt, tgtTime) {
				need = true
				break
			}
		}
	}
	if !need {
		r.result = mkUpToDate
		return mkUpToDate
	}

	for _, cmd := range r.cmds {
		m.t.Printf("%s\n", cmd)
		m.t.Stdout.Flush()
		status, err := m.runCmd(cmd)
		if err != sys.OK || status != 0 {
			m.t.Errorf("*** %s: exit %d", target, status)
			r.result = mkErr
			return mkErr
		}
	}
	r.result = mkRebuilt
	return mkRebuilt
}

// cloneFor deep-copies the rule set for a forked child bound to its own
// libc state. Rule bodies (deps, cmds) are immutable after parse and stay
// shared; the per-rule done/result scratch is fresh, so a child build
// never races the parent's bookkeeping.
func (m *mkFile) cloneFor(ct *libc.T) *mkFile {
	c := &mkFile{t: ct, vars: m.vars, rules: make(map[string]*mkRule, len(m.rules)), first: m.first}
	for k, r := range m.rules {
		c.rules[k] = &mkRule{target: r.target, deps: r.deps, cmds: r.cmds}
	}
	return c
}

// Child exit-code protocol for parallel builds.
const (
	mkChildUpToDate = 0
	mkChildErr      = 1
	mkChildRebuilt  = 3
)

// buildParallel brings goal up to date, building its rule-bearing
// dependencies in up to jobs concurrent child processes (make -j). Each
// dependency builds in a forked child that reports up-to-date/rebuilt/
// error through its exit status; the parent folds those results back into
// its own rule table and finishes the goal serially.
func (m *mkFile) buildParallel(goal string, jobs int) mkStatus {
	r := m.rules[goal]
	if r == nil {
		return m.build(goal, 0)
	}
	var queue []string
	for _, d := range r.deps {
		if m.rules[d] != nil {
			queue = append(queue, d)
		}
	}
	if len(queue) < 2 {
		return m.build(goal, 0)
	}

	running := map[int]string{} // child pid → dependency it is building
	failed := false
	spawn := func(dep string) bool {
		pid, err := m.t.Fork(func(ct *libc.T) {
			switch m.cloneFor(ct).build(dep, 1) {
			case mkUpToDate:
				ct.Exit(mkChildUpToDate)
			case mkRebuilt:
				ct.Exit(mkChildRebuilt)
			}
			ct.Exit(mkChildErr)
		})
		if err != sys.OK {
			m.t.Errorf("fork: %s", err.Error())
			return false
		}
		running[pid] = dep
		return true
	}
	reap := func() {
		pid, status, err := m.t.Wait()
		if err != sys.OK {
			failed = true
			for p := range running {
				delete(running, p)
			}
			return
		}
		dep, ok := running[pid]
		if !ok {
			return
		}
		delete(running, pid)
		rr := m.rules[dep]
		rr.done = true
		switch {
		case sys.WIfExited(status) && sys.WExitStatus(status) == mkChildUpToDate:
			rr.result = mkUpToDate
		case sys.WIfExited(status) && sys.WExitStatus(status) == mkChildRebuilt:
			rr.result = mkRebuilt
		default:
			rr.result = mkErr
			failed = true
		}
	}

	for _, dep := range queue {
		if failed {
			break
		}
		for len(running) >= jobs {
			reap()
		}
		if failed || !spawn(dep) {
			failed = true
			break
		}
	}
	for len(running) > 0 {
		reap()
	}
	if failed {
		return mkErr
	}
	// Finish serially: the children marked their targets done, so this
	// only rechecks timestamps and runs the goal's own commands.
	return m.build(goal, 0)
}

// runCmd executes one command line.
func (m *mkFile) runCmd(cmd string) (int, sys.Errno) {
	var argv []string
	if strings.ContainsAny(cmd, "|<>;&$'\"") {
		argv = []string{"sh", "-c", cmd}
	} else {
		argv = libc.Fields(cmd)
	}
	if len(argv) == 0 {
		return 0, sys.OK
	}
	path, err := m.t.SearchPath(argv[0])
	if err != sys.OK {
		m.t.Errorf("%s: command not found", argv[0])
		return 127, sys.OK
	}
	st, e := m.t.System(path, argv)
	if e != sys.OK {
		return 127, e
	}
	if sys.WIfExited(st) {
		return sys.WExitStatus(st), sys.OK
	}
	return 128 + sys.WTermSig(st), sys.OK
}
