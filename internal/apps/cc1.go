package apps

import (
	"fmt"
	"strconv"
	"strings"

	"interpose/internal/libc"
	"interpose/internal/sys"
)

// cc1Main is the compiler proper of the toy pipeline: cc1 INPUT OUTPUT.
// It compiles MiniC — functions, int variables, arithmetic, comparisons,
// if/else, while, calls, print/prints — into stack-machine assembly text
// for as(1).
func cc1Main(t *libc.T) int {
	if len(t.Args) != 3 {
		t.Errorf("usage: cc1 INPUT OUTPUT")
		return 2
	}
	data, err := t.ReadFile(t.Args[1])
	if err != sys.OK {
		t.Errorf("%s: %v", t.Args[1], err)
		return 1
	}
	asm, cerr := CompileMiniC(string(data))
	if cerr != nil {
		t.Errorf("%s: %v", t.Args[1], cerr)
		return 1
	}
	asm = OptimizeAsm(asm)
	if err := t.WriteFile(t.Args[2], []byte(asm), 0o644); err != sys.OK {
		t.Errorf("%s: %v", t.Args[2], err)
		return 1
	}
	return 0
}

// CompileMiniC translates MiniC source to assembly text. Exported for the
// compiler's unit tests.
func CompileMiniC(src string) (string, error) {
	toks, err := lexMiniC(src)
	if err != nil {
		return "", err
	}
	p := &miniParser{toks: toks}
	var out strings.Builder
	for !p.eof() {
		if err := p.function(&out); err != nil {
			return "", err
		}
	}
	return out.String(), nil
}

// Lexing.

type miniTok struct {
	kind string // "id", "num", "str", "punct"
	text string
	line int
}

func lexMiniC(src string) ([]miniTok, error) {
	var toks []miniTok
	line := 1
	i := 0
	for i < len(src) {
		ch := src[i]
		switch {
		case ch == '\n':
			line++
			i++
		case ch == ' ' || ch == '\t' || ch == '\r':
			i++
		case isIdentStart(ch):
			j := i
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			toks = append(toks, miniTok{"id", src[i:j], line})
			i = j
		case ch >= '0' && ch <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, miniTok{"num", src[i:j], line})
			i = j
		case ch == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' {
					j++
				}
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("line %d: unterminated string", line)
			}
			toks = append(toks, miniTok{"str", src[i+1 : j], line})
			i = j + 1
		default:
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=", "&&", "||":
				toks = append(toks, miniTok{"punct", two, line})
				i += 2
				continue
			}
			switch ch {
			case '(', ')', '{', '}', ';', ',', '+', '-', '*', '/', '%', '<', '>', '=', '!':
				toks = append(toks, miniTok{"punct", string(ch), line})
				i++
			default:
				return nil, fmt.Errorf("line %d: stray %q", line, string(ch))
			}
		}
	}
	return toks, nil
}

// Parsing and code generation (single pass, stack machine).

type miniParser struct {
	toks []miniTok
	pos  int

	fn       string
	locals   map[string]int
	nlocals  int
	labelSeq int
}

func (p *miniParser) eof() bool { return p.pos >= len(p.toks) }

func (p *miniParser) peek() miniTok {
	if p.eof() {
		return miniTok{kind: "eof"}
	}
	return p.toks[p.pos]
}

func (p *miniParser) next() miniTok {
	t := p.peek()
	p.pos++
	return t
}

func (p *miniParser) accept(text string) bool {
	if p.peek().kind == "punct" && p.peek().text == text ||
		p.peek().kind == "id" && p.peek().text == text {
		p.pos++
		return true
	}
	return false
}

func (p *miniParser) expect(text string) error {
	if p.accept(text) {
		return nil
	}
	t := p.peek()
	return fmt.Errorf("line %d: expected %q, found %q", t.line, text, t.text)
}

func (p *miniParser) label() string {
	p.labelSeq++
	return fmt.Sprintf("L%d", p.labelSeq)
}

// function parses: name ( params ) { body }
func (p *miniParser) function(out *strings.Builder) error {
	name := p.next()
	if name.kind != "id" {
		return fmt.Errorf("line %d: expected function name, found %q", name.line, name.text)
	}
	if name.text == "int" { // allow "int name(...)"
		name = p.next()
		if name.kind != "id" {
			return fmt.Errorf("line %d: expected function name", name.line)
		}
	}
	if err := p.expect("("); err != nil {
		return err
	}
	p.fn = name.text
	p.locals = map[string]int{}
	p.nlocals = 0
	nparams := 0
	for !p.accept(")") {
		if nparams > 0 {
			if err := p.expect(","); err != nil {
				return err
			}
		}
		p.accept("int")
		prm := p.next()
		if prm.kind != "id" {
			return fmt.Errorf("line %d: expected parameter name", prm.line)
		}
		p.locals[prm.text] = p.nlocals
		p.nlocals++
		nparams++
	}
	var body strings.Builder
	if err := p.expect("{"); err != nil {
		return err
	}
	if err := p.blockBody(&body); err != nil {
		return err
	}
	fmt.Fprintf(out, ".func %s %d\n", name.text, nparams)
	out.WriteString(body.String())
	// Implicit "return 0" for functions that fall off the end.
	out.WriteString("\tpush 0\n\tret\n")
	fmt.Fprintf(out, ".endfunc %d\n", p.nlocals)
	return nil
}

// blockBody parses statements until the closing brace.
func (p *miniParser) blockBody(out *strings.Builder) error {
	for !p.accept("}") {
		if p.eof() {
			return fmt.Errorf("unexpected end of input in %s", p.fn)
		}
		if err := p.statement(out); err != nil {
			return err
		}
	}
	return nil
}

func (p *miniParser) statement(out *strings.Builder) error {
	t := p.peek()
	switch {
	case t.kind == "punct" && t.text == "{":
		p.next()
		return p.blockBody(out)

	case t.kind == "id" && t.text == "int":
		p.next()
		name := p.next()
		if name.kind != "id" {
			return fmt.Errorf("line %d: expected variable name", name.line)
		}
		if _, dup := p.locals[name.text]; dup {
			return fmt.Errorf("line %d: %s redeclared", name.line, name.text)
		}
		slot := p.nlocals
		p.locals[name.text] = slot
		p.nlocals++
		if p.accept("=") {
			if err := p.expr(out); err != nil {
				return err
			}
			fmt.Fprintf(out, "\tstore %d\n", slot)
		}
		return p.expect(";")

	case t.kind == "id" && t.text == "if":
		p.next()
		if err := p.expect("("); err != nil {
			return err
		}
		if err := p.expr(out); err != nil {
			return err
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		elseL, endL := p.label(), p.label()
		fmt.Fprintf(out, "\tjz %s\n", elseL)
		if err := p.statement(out); err != nil {
			return err
		}
		fmt.Fprintf(out, "\tjmp %s\n", endL)
		fmt.Fprintf(out, "label %s\n", elseL)
		if p.accept("else") {
			if err := p.statement(out); err != nil {
				return err
			}
		}
		fmt.Fprintf(out, "label %s\n", endL)
		return nil

	case t.kind == "id" && t.text == "while":
		p.next()
		if err := p.expect("("); err != nil {
			return err
		}
		topL, endL := p.label(), p.label()
		fmt.Fprintf(out, "label %s\n", topL)
		if err := p.expr(out); err != nil {
			return err
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		fmt.Fprintf(out, "\tjz %s\n", endL)
		if err := p.statement(out); err != nil {
			return err
		}
		fmt.Fprintf(out, "\tjmp %s\n", topL)
		fmt.Fprintf(out, "label %s\n", endL)
		return nil

	case t.kind == "id" && t.text == "return":
		p.next()
		if p.peek().text == ";" {
			out.WriteString("\tpush 0\n")
		} else if err := p.expr(out); err != nil {
			return err
		}
		out.WriteString("\tret\n")
		return p.expect(";")

	case t.kind == "id" && t.text == "print":
		p.next()
		if err := p.expect("("); err != nil {
			return err
		}
		if err := p.expr(out); err != nil {
			return err
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		out.WriteString("\tprint\n")
		return p.expect(";")

	case t.kind == "id" && t.text == "prints":
		p.next()
		if err := p.expect("("); err != nil {
			return err
		}
		str := p.next()
		if str.kind != "str" {
			return fmt.Errorf("line %d: prints wants a string literal", str.line)
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		fmt.Fprintf(out, "\tprints %s\n", strconv.Quote(unescape(str.text)))
		return p.expect(";")

	case t.kind == "id":
		// Assignment or expression statement.
		if p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == "punct" && p.toks[p.pos+1].text == "=" {
			name := p.next()
			p.next() // "="
			slot, ok := p.locals[name.text]
			if !ok {
				return fmt.Errorf("line %d: %s undeclared", name.line, name.text)
			}
			if err := p.expr(out); err != nil {
				return err
			}
			fmt.Fprintf(out, "\tstore %d\n", slot)
			return p.expect(";")
		}
		if err := p.expr(out); err != nil {
			return err
		}
		out.WriteString("\tpop\n")
		return p.expect(";")
	}
	return fmt.Errorf("line %d: unexpected %q", t.line, t.text)
}

// Expression parsing with precedence climbing.

var miniOps = []struct {
	tokens []string
	ops    []string
}{
	{[]string{"||"}, []string{"or"}},
	{[]string{"&&"}, []string{"and"}},
	{[]string{"==", "!="}, []string{"eq", "ne"}},
	{[]string{"<", ">", "<=", ">="}, []string{"lt", "gt", "le", "ge"}},
	{[]string{"+", "-"}, []string{"add", "sub"}},
	{[]string{"*", "/", "%"}, []string{"mul", "div", "mod"}},
}

func (p *miniParser) expr(out *strings.Builder) error { return p.binary(out, 0) }

func (p *miniParser) binary(out *strings.Builder, level int) error {
	if level == len(miniOps) {
		return p.unary(out)
	}
	if err := p.binary(out, level+1); err != nil {
		return err
	}
	for {
		matched := false
		for i, tok := range miniOps[level].tokens {
			if p.peek().kind == "punct" && p.peek().text == tok {
				p.next()
				if err := p.binary(out, level+1); err != nil {
					return err
				}
				fmt.Fprintf(out, "\t%s\n", miniOps[level].ops[i])
				matched = true
				break
			}
		}
		if !matched {
			return nil
		}
	}
}

func (p *miniParser) unary(out *strings.Builder) error {
	switch {
	case p.accept("-"):
		if err := p.unary(out); err != nil {
			return err
		}
		out.WriteString("\tneg\n")
		return nil
	case p.accept("!"):
		if err := p.unary(out); err != nil {
			return err
		}
		out.WriteString("\tnot\n")
		return nil
	}
	return p.primary(out)
}

func (p *miniParser) primary(out *strings.Builder) error {
	t := p.next()
	switch t.kind {
	case "num":
		fmt.Fprintf(out, "\tpush %s\n", t.text)
		return nil
	case "id":
		if p.accept("(") {
			nargs := 0
			for !p.accept(")") {
				if nargs > 0 {
					if err := p.expect(","); err != nil {
						return err
					}
				}
				if err := p.expr(out); err != nil {
					return err
				}
				nargs++
			}
			fmt.Fprintf(out, "\tcall %s %d\n", t.text, nargs)
			return nil
		}
		slot, ok := p.locals[t.text]
		if !ok {
			return fmt.Errorf("line %d: %s undeclared", t.line, t.text)
		}
		fmt.Fprintf(out, "\tload %d\n", slot)
		return nil
	case "punct":
		if t.text == "(" {
			if err := p.expr(out); err != nil {
				return err
			}
			return p.expect(")")
		}
	}
	return fmt.Errorf("line %d: unexpected %q in expression", t.line, t.text)
}

func unescape(s string) string {
	s = strings.ReplaceAll(s, `\n`, "\n")
	s = strings.ReplaceAll(s, `\t`, "\t")
	s = strings.ReplaceAll(s, `\"`, `"`)
	return s
}
