package apps

import (
	"fmt"
	"strconv"
	"strings"
)

// The peephole optimizer of the toy pipeline: cc1 runs it over generated
// assembly before writing the .s file. It folds constant arithmetic and
// removes trivially dead pushes — enough to make the compiler a real
// multi-pass compiler without changing observable program behaviour.

// OptimizeAsm rewrites assembly text, folding constant expressions until
// a fixed point. Labels are barriers: no window crosses one, so jump
// targets stay valid (they are label names until as(1) resolves them).
func OptimizeAsm(asm string) string {
	lines := strings.Split(asm, "\n")
	for {
		folded, changed := foldOnce(lines)
		lines = folded
		if !changed {
			break
		}
	}
	return strings.Join(lines, "\n")
}

// binaryFold maps instruction names to constant evaluation.
var binaryFold = map[string]func(a, b int32) (int32, bool){
	"add": func(a, b int32) (int32, bool) { return a + b, true },
	"sub": func(a, b int32) (int32, bool) { return a - b, true },
	"mul": func(a, b int32) (int32, bool) { return a * b, true },
	"div": func(a, b int32) (int32, bool) {
		if b == 0 {
			return 0, false // preserve the runtime fault
		}
		return a / b, true
	},
	"mod": func(a, b int32) (int32, bool) {
		if b == 0 {
			return 0, false
		}
		return a % b, true
	},
	"eq":  func(a, b int32) (int32, bool) { return b2i32(a == b), true },
	"ne":  func(a, b int32) (int32, bool) { return b2i32(a != b), true },
	"lt":  func(a, b int32) (int32, bool) { return b2i32(a < b), true },
	"le":  func(a, b int32) (int32, bool) { return b2i32(a <= b), true },
	"gt":  func(a, b int32) (int32, bool) { return b2i32(a > b), true },
	"ge":  func(a, b int32) (int32, bool) { return b2i32(a >= b), true },
	"and": func(a, b int32) (int32, bool) { return b2i32(a != 0 && b != 0), true },
	"or":  func(a, b int32) (int32, bool) { return b2i32(a != 0 || b != 0), true },
}

var unaryFold = map[string]func(a int32) int32{
	"neg": func(a int32) int32 { return -a },
	"not": func(a int32) int32 { return b2i32(a == 0) },
}

func b2i32(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// pushValue parses a "push N" line.
func pushValue(line string) (int32, bool) {
	f := strings.Fields(line)
	if len(f) != 2 || f[0] != "push" {
		return 0, false
	}
	v, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return 0, false
	}
	return int32(v), true
}

// barrier reports whether a line ends a peephole window: labels and
// control transfers may be jumped to or change the stack unpredictably.
func barrier(line string) bool {
	f := strings.Fields(line)
	if len(f) == 0 {
		return true
	}
	switch f[0] {
	case "label", "jmp", "jz", "call", ".func", ".endfunc", "ret":
		return true
	}
	return false
}

func opName(line string) string {
	f := strings.Fields(line)
	if len(f) == 0 {
		return ""
	}
	return f[0]
}

// foldOnce performs one pass of the rewrites.
func foldOnce(lines []string) ([]string, bool) {
	var out []string
	changed := false
	i := 0
	for i < len(lines) {
		// push A; push B; binop  →  push fold(A,B)
		if i+2 < len(lines) && !barrier(lines[i+1]) && !barrier(lines[i+2]) {
			if a, ok := pushValue(strings.TrimSpace(lines[i])); ok {
				if b, ok2 := pushValue(strings.TrimSpace(lines[i+1])); ok2 {
					if fold, ok3 := binaryFold[opName(strings.TrimSpace(lines[i+2]))]; ok3 {
						if v, safe := fold(a, b); safe {
							out = append(out, fmt.Sprintf("\tpush %d", v))
							i += 3
							changed = true
							continue
						}
					}
				}
			}
		}
		// push A; unop  →  push fold(A)
		if i+1 < len(lines) && !barrier(lines[i+1]) {
			if a, ok := pushValue(strings.TrimSpace(lines[i])); ok {
				if fold, ok2 := unaryFold[opName(strings.TrimSpace(lines[i+1]))]; ok2 {
					out = append(out, fmt.Sprintf("\tpush %d", fold(a)))
					i += 2
					changed = true
					continue
				}
			}
		}
		// push A; pop  →  (nothing)
		if i+1 < len(lines) {
			if _, ok := pushValue(strings.TrimSpace(lines[i])); ok &&
				opName(strings.TrimSpace(lines[i+1])) == "pop" {
				i += 2
				changed = true
				continue
			}
		}
		out = append(out, lines[i])
		i++
	}
	return out, changed
}

// CountInsns counts instruction lines in assembly text (for tests and the
// -v driver output).
func CountInsns(asm string) int {
	n := 0
	for _, line := range strings.Split(asm, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, ".") || strings.HasPrefix(t, "label ") || strings.HasPrefix(t, "#") {
			continue
		}
		n++
	}
	return n
}
