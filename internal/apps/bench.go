package apps

import (
	"interpose/internal/libc"
	"interpose/internal/sys"
)

// benchMain is the micro-measurement program behind the paper's Table 3-5:
// bench OP N performs exactly N repetitions of one system call pattern.
//
//	getpid       N getpid calls
//	gettimeofday N gettimeofday calls
//	fstat        N fstat calls on an open file
//	read1k       N 1 KB reads (seeking back each time)
//	write4k      N 4 KB overwrites in place (seeking back each time)
//	stat         N stat calls on a six-component pathname
//	fork         N fork/wait/_exit cycles
//	execve       an exec chain N long (each exec re-enters this program)
func benchMain(t *libc.T) int {
	if len(t.Args) < 3 {
		t.Errorf("usage: bench OP N")
		return 2
	}
	op := t.Args[1]
	n := atoi(t.Args[2])

	// StatPath is the six-component pathname the measurements use,
	// mirroring the paper's "pathnames ... contain 6 pathname components".
	const statPath = "/usr/lib/bench/three/four/five/six"

	switch op {
	case "getpid":
		for i := 0; i < n; i++ {
			t.Syscall(sys.SYS_getpid)
		}
	case "gettimeofday":
		addr := t.Malloc(sys.TimevalSize)
		for i := 0; i < n; i++ {
			t.Syscall(sys.SYS_gettimeofday, addr, 0)
		}
	case "fstat":
		fd, err := t.Open("/etc/passwd", sys.O_RDONLY, 0)
		if err != sys.OK {
			t.Errorf("open: %v", err)
			return 1
		}
		addr := t.Malloc(sys.StatSize)
		for i := 0; i < n; i++ {
			t.Syscall(sys.SYS_fstat, sys.Word(fd), addr)
		}
	case "read1k":
		fd, err := t.Open("/usr/lib/bench/data1k", sys.O_RDONLY, 0)
		if err != sys.OK {
			t.Errorf("open: %v", err)
			return 1
		}
		buf := t.Malloc(1024)
		for i := 0; i < n; i++ {
			t.Syscall(sys.SYS_read, sys.Word(fd), buf, 1024)
			t.Syscall(sys.SYS_lseek, sys.Word(fd), 0, sys.SEEK_SET)
		}
	case "write4k":
		fd, err := t.Open("/tmp/bench.out", sys.O_WRONLY|sys.O_CREAT|sys.O_TRUNC, 0o644)
		if err != sys.OK {
			t.Errorf("open: %v", err)
			return 1
		}
		buf := t.Malloc(4096)
		for i := 0; i < n; i++ {
			t.Syscall(sys.SYS_write, sys.Word(fd), buf, 4096)
			t.Syscall(sys.SYS_lseek, sys.Word(fd), 0, sys.SEEK_SET)
		}
	case "stat":
		pathAddr := t.CString(statPath)
		addr := t.Malloc(sys.StatSize)
		for i := 0; i < n; i++ {
			if _, err := t.Syscall(sys.SYS_stat, pathAddr, addr); err != sys.OK {
				t.Errorf("stat: %v", err)
				return 1
			}
		}
	case "fork":
		for i := 0; i < n; i++ {
			pid, err := t.Fork(func(ct *libc.T) { ct.Exit(0) })
			if err != sys.OK {
				t.Errorf("fork: %v", err)
				return 1
			}
			if _, _, err := t.Waitpid(pid); err != sys.OK {
				t.Errorf("wait: %v", err)
				return 1
			}
		}
	case "execve":
		if n <= 0 {
			return 0
		}
		err := t.Exec("/bin/bench", []string{"bench", "execve", itoaApp(n - 1)}, t.Env)
		t.Errorf("exec: %v", err)
		return 1
	default:
		t.Errorf("unknown op %q", op)
		return 2
	}
	return 0
}

func itoaApp(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// SetupBenchFiles creates the fixtures the bench program expects.
func SetupBenchFiles(k benchWorld) error {
	if err := k.MkdirAll("/usr/lib/bench/three/four/five", 0o755); err != nil {
		return err
	}
	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte(i)
	}
	if err := k.WriteFile("/usr/lib/bench/data1k", data, 0o644); err != nil {
		return err
	}
	return k.WriteFile("/usr/lib/bench/three/four/five/six", []byte("x"), 0o644)
}

// benchWorld is the kernel surface SetupBenchFiles needs.
type benchWorld interface {
	MkdirAll(path string, perm uint32) error
	WriteFile(path string, data []byte, perm uint32) error
}
