package apps

import (
	"strings"
	"testing"
	"testing/quick"
)

// compileAndRun pushes MiniC source through the whole in-process pipeline:
// compile to assembly, assemble, link-check, run.
func compileAndRun(t *testing.T, src string) (string, int32) {
	t.Helper()
	asm, err := CompileMiniC(src)
	if err != nil {
		t.Fatalf("compile: %v\nsource:\n%s", err, src)
	}
	funcs, err := Assemble(asm)
	if err != nil {
		t.Fatalf("assemble: %v\nassembly:\n%s", err, asm)
	}
	if err := LinkCheck(funcs); err != nil {
		t.Fatalf("link: %v", err)
	}
	var out strings.Builder
	code, err := RunVM(funcs, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.String(), code
}

func TestMiniCArithmetic(t *testing.T) {
	out, code := compileAndRun(t, `
main() {
    print(2 + 3 * 4);
    print((2 + 3) * 4);
    print(10 / 3);
    print(10 % 3);
    print(-5 + 2);
    return 0;
}`)
	if out != "14\n20\n3\n1\n-3\n" || code != 0 {
		t.Fatalf("out=%q code=%d", out, code)
	}
}

func TestMiniCComparisonsAndLogic(t *testing.T) {
	out, _ := compileAndRun(t, `
main() {
    print(1 < 2);
    print(2 <= 1);
    print(3 == 3);
    print(3 != 3);
    print(1 && 0);
    print(1 || 0);
    print(!5);
    print(!0);
    return 0;
}`)
	if out != "1\n0\n1\n0\n0\n1\n0\n1\n" {
		t.Fatalf("out=%q", out)
	}
}

func TestMiniCControlFlow(t *testing.T) {
	out, _ := compileAndRun(t, `
main() {
    int i = 0;
    int sum = 0;
    while (i < 10) {
        if (i % 2 == 0) {
            sum = sum + i;
        } else {
            sum = sum - 1;
        }
        i = i + 1;
    }
    print(sum);
    return 0;
}`)
	if out != "15\n" { // 0+2+4+6+8 - 5
		t.Fatalf("out=%q", out)
	}
}

func TestMiniCFunctionsAndRecursion(t *testing.T) {
	out, code := compileAndRun(t, `
fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}

max(a, b) {
    if (a > b) { return a; }
    return b;
}

main() {
    print(fib(15));
    print(max(3, 9));
    prints("bye\n");
    return fib(10);
}`)
	if out != "610\n9\nbye\n" || code != 55 {
		t.Fatalf("out=%q code=%d", out, code)
	}
}

func TestMiniCErrors(t *testing.T) {
	for _, src := range []string{
		"main() { return undeclared; }",
		"main() { int x; int x; }",
		"main() { if (1 { } }",
		"main() { prints(42); }",
		"main() { @; }",
		`main() { prints("unterminated); }`,
	} {
		if _, err := CompileMiniC(src); err == nil {
			t.Errorf("compiled invalid source %q", src)
		}
	}
}

func TestLinkErrors(t *testing.T) {
	mk := func(src string) []VMFunc {
		asm, err := CompileMiniC(src)
		if err != nil {
			t.Fatal(err)
		}
		funcs, err := Assemble(asm)
		if err != nil {
			t.Fatal(err)
		}
		return funcs
	}
	// Undefined symbol.
	if err := LinkCheck(mk("main() { missing(); }")); err == nil {
		t.Error("undefined symbol accepted")
	}
	// No main.
	if err := LinkCheck(mk("helper() { return 1; }")); err == nil {
		t.Error("missing main accepted")
	}
	// Duplicate symbol across objects.
	dup := append(mk("main() { return 0; }"), mk("main() { return 1; }")...)
	if err := LinkCheck(dup); err == nil {
		t.Error("duplicate main accepted")
	}
}

func TestVMDivideByZero(t *testing.T) {
	asm, _ := CompileMiniC("main() { print(1 / 0); }")
	funcs, _ := Assemble(asm)
	var out strings.Builder
	if _, err := RunVM(funcs, &out); err == nil {
		t.Fatal("division by zero not caught")
	}
}

func TestObjectFormatRoundTrip(t *testing.T) {
	asm, _ := CompileMiniC(`
main() {
    int x = 6;
    prints("s with \"quotes\" and\nnewlines\n");
    print(x * 7);
    return 0;
}`)
	funcs, err := Assemble(asm)
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := ParseVMImage(FormatVMObject(funcs))
	if err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	RunVM(funcs, &a)
	RunVM(reparsed, &b)
	if a.String() != b.String() || a.String() == "" {
		t.Fatalf("object round trip changed behaviour: %q vs %q", a.String(), b.String())
	}
	// Executable format too.
	exe, err := ParseVMImage(FormatVMExecutable(funcs))
	if err != nil {
		t.Fatal(err)
	}
	var c strings.Builder
	RunVM(exe, &c)
	if c.String() != a.String() {
		t.Fatal("executable round trip changed behaviour")
	}
}

func TestMiniCExpressionProperty(t *testing.T) {
	// Random arithmetic over small ints matches Go's evaluation.
	f := func(a, b, c int8) bool {
		if b == 0 || c == 0 {
			return true
		}
		src := "main() { print((" + itoaSigned(int32(a)) + " * " + itoaSigned(int32(b)) +
			" + " + itoaSigned(int32(c)) + ") / " + itoaSigned(int32(c)) + "); return 0; }"
		asm, err := CompileMiniC(src)
		if err != nil {
			return false
		}
		funcs, err := Assemble(asm)
		if err != nil {
			return false
		}
		var out strings.Builder
		if _, err := RunVM(funcs, &out); err != nil {
			return false
		}
		want := (int32(a)*int32(b) + int32(c)) / int32(c)
		return strings.TrimSpace(out.String()) == itoaSigned(want)
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func itoaSigned(v int32) string {
	if v < 0 {
		return "-" + itoaApp(int(-v))
	}
	return itoaApp(int(v))
}

func TestCppStripComments(t *testing.T) {
	src := `int a; // line comment
/* block
comment */ int b;
"a // string /* keeps */ its text";
`
	out := stripComments(src)
	if strings.Contains(out, "line comment") || strings.Contains(out, "block") {
		t.Fatalf("comments survive: %q", out)
	}
	if !strings.Contains(out, `"a // string /* keeps */ its text"`) {
		t.Fatalf("string literal mangled: %q", out)
	}
	// Newlines preserved for line numbering.
	if strings.Count(out, "\n") != strings.Count(src, "\n") {
		t.Fatalf("line count changed: %q", out)
	}
}

func TestShWordSplitting(t *testing.T) {
	vars := map[string]string{"X": "expanded", "EMPTY": ""}
	cases := []struct {
		in   string
		want string
	}{
		{`a b  c`, "a|b|c"},
		{`'single quoted arg' rest`, "single quoted arg|rest"},
		{`"double $X" tail`, "double expanded|tail"},
		{`$X$X`, "expandedexpanded"},
		{`pre$EMPTY post`, "pre|post"},
	}
	for _, c := range cases {
		got := strings.Join(shWords(c.in, vars), "|")
		if got != c.want {
			t.Errorf("shWords(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSplitTop(t *testing.T) {
	got := splitTop(`a; 'b;c'; d`, ';')
	if len(got) != 3 || strings.TrimSpace(got[1]) != `'b;c'` {
		t.Fatalf("splitTop = %q", got)
	}
	// '|' splitting must not split "||".
	got = splitTop(`a | b || c`, '|')
	if len(got) != 2 {
		t.Fatalf("pipe split = %q", got)
	}
}
