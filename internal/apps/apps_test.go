package apps_test

import (
	"strings"
	"testing"

	"interpose/internal/apps"
	"interpose/internal/kernel"
	"interpose/internal/sys"
)

func world(t *testing.T) *kernel.Kernel {
	t.Helper()
	k, err := apps.NewWorld()
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	return k
}

// run spawns a program and returns (exitStatus, consoleOutput).
func run(t *testing.T, k *kernel.Kernel, argv ...string) (int, string) {
	t.Helper()
	k.Console().TakeOutput()
	p, err := k.Spawn("/bin/"+argv[0], argv, []string{"PATH=/bin"})
	if err != nil {
		t.Fatalf("spawn %v: %v", argv, err)
	}
	st := k.WaitExit(p)
	if !sys.WIfExited(st) {
		t.Fatalf("%v: killed by %s\n%s", argv, sys.SignalName(sys.WTermSig(st)), k.Console().Output())
	}
	return sys.WExitStatus(st), k.Console().TakeOutput()
}

func TestEcho(t *testing.T) {
	k := world(t)
	st, out := run(t, k, "echo", "hello", "world")
	if st != 0 || out != "hello world\n" {
		t.Fatalf("st=%d out=%q", st, out)
	}
}

func TestCoreutilsRoundTrip(t *testing.T) {
	k := world(t)
	if err := k.WriteFile("/tmp/a.txt", []byte("one\ntwo\nthree\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if st, out := run(t, k, "cat", "/tmp/a.txt"); st != 0 || out != "one\ntwo\nthree\n" {
		t.Fatalf("cat: %d %q", st, out)
	}
	if st, out := run(t, k, "wc", "/tmp/a.txt"); st != 0 || !strings.Contains(out, "3") {
		t.Fatalf("wc: %d %q", st, out)
	}
	if st, _ := run(t, k, "cp", "/tmp/a.txt", "/tmp/b.txt"); st != 0 {
		t.Fatal("cp failed")
	}
	if st, out := run(t, k, "grep", "two", "/tmp/b.txt"); st != 0 || out != "two\n" {
		t.Fatalf("grep: %d %q", st, out)
	}
	if st, _ := run(t, k, "mv", "/tmp/b.txt", "/tmp/c.txt"); st != 0 {
		t.Fatal("mv failed")
	}
	if st, out := run(t, k, "ls", "/tmp"); st != 0 || !strings.Contains(out, "c.txt") || strings.Contains(out, "b.txt") {
		t.Fatalf("ls: %d %q", st, out)
	}
	if st, _ := run(t, k, "rm", "/tmp/c.txt"); st != 0 {
		t.Fatal("rm failed")
	}
	if st, _ := run(t, k, "cat", "/tmp/c.txt"); st == 0 {
		t.Fatal("cat of removed file succeeded")
	}
}

func TestShPipelineAndRedirect(t *testing.T) {
	k := world(t)
	if err := k.WriteFile("/tmp/in.txt", []byte("alpha\nbeta\ngamma\nbetamax\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, out := run(t, k, "sh", "-c", "cat /tmp/in.txt | grep beta > /tmp/out.txt; wc /tmp/out.txt")
	if st != 0 {
		t.Fatalf("sh: %d %q", st, out)
	}
	data, err := k.ReadFile("/tmp/out.txt")
	if err != nil || string(data) != "beta\nbetamax\n" {
		t.Fatalf("redirect: %v %q", err, data)
	}
	if !strings.Contains(out, "2") {
		t.Fatalf("wc out: %q", out)
	}
}

func TestShConditionals(t *testing.T) {
	k := world(t)
	if st, out := run(t, k, "sh", "-c", "true && echo yes || echo no"); st != 0 || out != "yes\n" {
		t.Fatalf("and-or: %d %q", st, out)
	}
	if st, out := run(t, k, "sh", "-c", "false && echo yes || echo no"); st != 0 || out != "no\n" {
		t.Fatalf("and-or: %d %q", st, out)
	}
}

func TestShellScriptViaInterpreter(t *testing.T) {
	k := world(t)
	script := "#!/bin/sh\necho from script $GREETING\n"
	if err := k.WriteFile("/tmp/run.sh", []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	k.Console().TakeOutput()
	p, err := k.Spawn("/tmp/run.sh", []string{"/tmp/run.sh"}, []string{"PATH=/bin", "GREETING=hi"})
	if err != nil {
		t.Fatal(err)
	}
	st := k.WaitExit(p)
	out := k.Console().TakeOutput()
	if sys.WExitStatus(st) != 0 || out != "from script hi\n" {
		t.Fatalf("script: %#x %q", st, out)
	}
}

func TestScribeFormatsDissertation(t *testing.T) {
	k := world(t)
	path, err := apps.GenDissertation(k, "/doc", 4, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	st, out := run(t, k, "scribe", path)
	if st != 0 {
		t.Fatalf("scribe: %d %q", st, out)
	}
	doc, rerr := k.ReadFile("/doc/dissertation.doc")
	if rerr != nil {
		t.Fatal(rerr)
	}
	text := string(doc)
	for _, want := range []string{
		"TRANSPARENTLY INTERPOSING USER CODE",
		"Chapter 1.", "Chapter 4.",
		"1.1  Section 1 of Chapter 1",
		"Table of Contents",
		"- 2 -", // page footers
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("formatted doc missing %q", want)
		}
	}
	if !strings.Contains(out, "pages") {
		t.Fatalf("scribe output: %q", out)
	}
}

func TestCompilerPipeline(t *testing.T) {
	k := world(t)
	src := `#include "lib.h"
main()
{
    int x = SIX * 7;
    print(x);
    prints("done\n");
    return x - 42;
}
`
	lib := "#define SIX 6\n"
	if err := k.WriteFile("/tmp/t.c", []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := k.WriteFile("/tmp/lib.h", []byte(lib), 0o644); err != nil {
		t.Fatal(err)
	}
	st, out := run(t, k, "sh", "-c", "cd /tmp; cc -o t t.c && ./t")
	if st != 0 {
		t.Fatalf("cc+run: %d %q", st, out)
	}
	if !strings.Contains(out, "42\n") || !strings.Contains(out, "done") {
		t.Fatalf("program output: %q", out)
	}
}

func TestMakeEightPrograms(t *testing.T) {
	k := world(t)
	if err := apps.GenMakeTree(k, "/src", 8); err != nil {
		t.Fatal(err)
	}
	st, out := run(t, k, "sh", "-c", "cd /src; mk all")
	if st != 0 {
		t.Fatalf("mk: %d\n%s", st, out)
	}
	// All eight executables run and print their expected outputs.
	st, out = run(t, k, "sh", "-c", "cd /src; ./prog1; ./prog5; ./prog8")
	if st != 0 {
		t.Fatalf("run progs: %d %q", st, out)
	}
	for _, i := range []int{1, 5, 8} {
		if !strings.Contains(out, apps.ExpectedProgOutput(i)) {
			t.Fatalf("prog%d output missing; got %q want %q", i, out, apps.ExpectedProgOutput(i))
		}
	}
	// Second make is a no-op: everything up to date.
	st, out = run(t, k, "sh", "-c", "cd /src; mk all")
	if st != 0 || strings.Contains(out, "cc -o") {
		t.Fatalf("rebuild not up-to-date: %d\n%s", st, out)
	}
}

func TestMakeParallel(t *testing.T) {
	k := world(t)
	if err := apps.GenMakeTree(k, "/src", 8); err != nil {
		t.Fatal(err)
	}
	st, out := run(t, k, "sh", "-c", "cd /src; mk -j 4 all")
	if st != 0 {
		t.Fatalf("mk -j 4: %d\n%s", st, out)
	}
	st, out = run(t, k, "sh", "-c", "cd /src; ./prog1; ./prog4; ./prog8")
	if st != 0 {
		t.Fatalf("run progs: %d %q", st, out)
	}
	for _, i := range []int{1, 4, 8} {
		if !strings.Contains(out, apps.ExpectedProgOutput(i)) {
			t.Fatalf("prog%d output missing; got %q want %q", i, out, apps.ExpectedProgOutput(i))
		}
	}
	// Second parallel make is a no-op: everything up to date.
	st, out = run(t, k, "sh", "-c", "cd /src; mk -j4 all")
	if st != 0 || strings.Contains(out, "cc -o") {
		t.Fatalf("parallel rebuild not up-to-date: %d\n%s", st, out)
	}
	// Touch one source; only that program rebuilds, even with -j.
	st, out = run(t, k, "sh", "-c", "cd /src; touch prog3_sub.c; mk -j 8 all")
	if st != 0 {
		t.Fatalf("mk -j 8 after touch: %d\n%s", st, out)
	}
	if !strings.Contains(out, "prog3") || strings.Contains(out, "-o prog1") {
		t.Fatalf("parallel rebuild selection wrong:\n%s", out)
	}
}

func TestMakeRebuildsOnTouch(t *testing.T) {
	k := world(t)
	if err := apps.GenMakeTree(k, "/src", 2); err != nil {
		t.Fatal(err)
	}
	if st, out := run(t, k, "sh", "-c", "cd /src; mk all"); st != 0 {
		t.Fatalf("mk: %d\n%s", st, out)
	}
	// Touch one source; only that program rebuilds.
	st, out := run(t, k, "sh", "-c", "cd /src; touch prog2_sub.c; mk all")
	if st != 0 {
		t.Fatalf("mk: %d\n%s", st, out)
	}
	if !strings.Contains(out, "prog2") || strings.Contains(out, "-o prog1") {
		t.Fatalf("rebuild selection wrong:\n%s", out)
	}
}

func TestSigplay(t *testing.T) {
	k := world(t)
	st, out := run(t, k, "sigplay")
	if st != 0 {
		t.Fatalf("sigplay: %d %q", st, out)
	}
	for _, want := range []string{"caught SIGUSR1", "handled 1 signals", "blocked, handled 1", "unblocked, handled 2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sigplay missing %q:\n%s", want, out)
		}
	}
}

func TestPwdAndGetwd(t *testing.T) {
	k := world(t)
	if err := k.MkdirAll("/home/user/deep/dir", 0o755); err != nil {
		t.Fatal(err)
	}
	st, out := run(t, k, "sh", "-c", "cd /home/user/deep/dir; pwd")
	if st != 0 || out != "/home/user/deep/dir\n" {
		t.Fatalf("pwd: %d %q", st, out)
	}
}

func TestSortUniqTeePipeline(t *testing.T) {
	k := world(t)
	if err := k.WriteFile("/tmp/words", []byte("pear\napple\npear\nbanana\napple\npear\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, out := run(t, k, "sh", "-c",
		"cat /tmp/words | sort | uniq -c | sort -r | tee /tmp/freq")
	if st != 0 {
		t.Fatalf("pipeline: %d %q", st, out)
	}
	if !strings.Contains(out, "3 pear") || !strings.Contains(out, "2 apple") || !strings.Contains(out, "1 banana") {
		t.Fatalf("frequency output wrong: %q", out)
	}
	data, err := k.ReadFile("/tmp/freq")
	if err != nil || string(data) != out {
		t.Fatalf("tee copy differs: %v %q vs %q", err, data, out)
	}
}

func TestSleepUtility(t *testing.T) {
	k := world(t)
	st, _ := run(t, k, "sleep", "0.02")
	if st != 0 {
		t.Fatal("sleep failed")
	}
}
