package apps

import (
	"strings"
	"testing"
	"testing/quick"
)

// optRun compiles, optimizes, assembles and runs, returning output.
func optRun(t *testing.T, src string) (string, string) {
	t.Helper()
	asm, err := CompileMiniC(src)
	if err != nil {
		t.Fatal(err)
	}
	opt := OptimizeAsm(asm)
	funcs, err := Assemble(opt)
	if err != nil {
		t.Fatalf("assemble optimized: %v\n%s", err, opt)
	}
	var out strings.Builder
	if _, err := RunVM(funcs, &out); err != nil {
		t.Fatalf("run optimized: %v", err)
	}
	return out.String(), opt
}

func TestPeepholeFoldsConstants(t *testing.T) {
	out, opt := optRun(t, "main() { print(2 + 3 * 4); return 0; }")
	if out != "14\n" {
		t.Fatalf("out = %q", out)
	}
	if !strings.Contains(opt, "push 14") {
		t.Fatalf("constants not folded:\n%s", opt)
	}
	if strings.Contains(opt, "mul") || strings.Contains(opt, "add") {
		t.Fatalf("arithmetic survives folding:\n%s", opt)
	}
}

func TestPeepholeShrinksCode(t *testing.T) {
	asm, err := CompileMiniC(`
main() {
    print((1 + 2) * (3 + 4) - 5);
    print(!0 && 1 < 2);
    return 0 * 99;
}`)
	if err != nil {
		t.Fatal(err)
	}
	before := CountInsns(asm)
	after := CountInsns(OptimizeAsm(asm))
	if after >= before {
		t.Fatalf("no shrink: %d → %d", before, after)
	}
}

func TestPeepholePreservesDivideByZero(t *testing.T) {
	asm, _ := CompileMiniC("main() { print(7 / 0); return 0; }")
	opt := OptimizeAsm(asm)
	if !strings.Contains(opt, "div") {
		t.Fatalf("division by zero folded away:\n%s", opt)
	}
	funcs, _ := Assemble(opt)
	var out strings.Builder
	if _, err := RunVM(funcs, &out); err == nil {
		t.Fatal("runtime fault optimized away")
	}
}

func TestPeepholeRespectsLabels(t *testing.T) {
	// A constant push before a label must not fold with an op after it:
	// the label is a jump target and the stack differs per path.
	out, _ := optRun(t, `
main() {
    int i = 0;
    int acc = 0;
    while (i < 3) {
        acc = acc + 2 * 2;
        i = i + 1;
    }
    print(acc);
    return 0;
}`)
	if out != "12\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestPeepholeSemanticsPreservedProperty(t *testing.T) {
	// Optimized and unoptimized programs behave identically on random
	// constant expressions.
	f := func(a, b, c int8) bool {
		src := "main() { print(" + itoaSigned(int32(a)) + " * (" + itoaSigned(int32(b)) +
			" + " + itoaSigned(int32(c)) + ") - " + itoaSigned(int32(c)) + "); return 0; }"
		asm, err := CompileMiniC(src)
		if err != nil {
			return false
		}
		run := func(text string) (string, bool) {
			funcs, err := Assemble(text)
			if err != nil {
				return "", false
			}
			var out strings.Builder
			if _, err := RunVM(funcs, &out); err != nil {
				return "", false
			}
			return out.String(), true
		}
		plain, ok1 := run(asm)
		opt, ok2 := run(OptimizeAsm(asm))
		return ok1 && ok2 && plain == opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
