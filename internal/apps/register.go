package apps

import (
	"encoding/binary"
	"fmt"
	"sort"

	"interpose/internal/agents/hpux"
	"interpose/internal/image"
	"interpose/internal/kernel"
	"interpose/internal/libc"
	"interpose/internal/sys"
	"interpose/internal/world"
)

// mains maps program names to their entry functions.
var mains = map[string]func(*libc.T) int{
	"echo":     echoMain,
	"true":     trueMain,
	"false":    falseMain,
	"pwd":      pwdMain,
	"cat":      catMain,
	"wc":       wcMain,
	"ls":       lsMain,
	"cp":       cpMain,
	"mv":       mvMain,
	"rm":       rmMain,
	"ln":       lnMain,
	"touch":    touchMain,
	"mkdir":    mkdirMain,
	"date":     dateMain,
	"hostname": hostnameMain,
	"kill":     killMain,
	"grep":     grepMain,
	"head":     headMain,
	"sigplay":  sigplayMain,
	"sleep":    sleepMain,
	"tee":      teeMain,
	"sort":     sortMain,
	"uniq":     uniqMain,
	"sh":       shMain,
	"scribe":   scribeMain,
	"mk":       mkMain,
	"cc":       ccMain,
	"cpp":      cppMain,
	"cc1":      cc1Main,
	"as":       asMain,
	"ld":       ldMain,
	"vmrun":    vmrunMain,
	"hpuxdate": hpuxdateMain,
	"syscount": syscountMain,
	"bench":    benchMain,
}

// Names returns the registered program names, sorted.
func Names() []string {
	out := make([]string, 0, len(mains))
	for n := range mains {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Register adds every application to an image registry.
func Register(reg *image.Registry) {
	for name, fn := range mains {
		reg.Register(name, libc.Main(fn))
	}
}

// Spec returns the base world spec for the full application set: every
// program registered and installed in /bin. Callers layer their own
// options (agents, journals, budgets) on top before world.Boot.
func Spec() world.Spec {
	return world.Spec{Register: Register}
}

// NewWorld boots a kernel with all applications registered and installed
// in /bin — a thin caller of the world lifecycle layer, kept for the
// many tests that only need the raw kernel. The layer installs programs
// in sorted order so two boots assign identical inode numbers
// throughout — a journal recorded against one fresh world must replay
// exactly onto another.
func NewWorld() (*kernel.Kernel, error) {
	w, err := world.Boot(Spec())
	if err != nil {
		return nil, fmt.Errorf("apps: %w", err)
	}
	return w.Kernel(), nil
}

// hpuxdateMain is a binary from a variant operating system: it uses the
// HP-UX-flavoured system interface — the time(2) call and the packed stat
// layout — and therefore only runs correctly under the hpux emulation
// agent (paper §1.4: running variant-OS binaries via interposition).
func hpuxdateMain(t *libc.T) int {
	rv, err := t.Syscall(hpux.SysTime, 0)
	if err != sys.OK {
		t.Errorf("time: %v", err)
		return 1
	}
	t.Printf("hpux time: %d\n", rv[0])

	// stat /etc/passwd with the HP-UX call number and struct layout.
	pathAddr := t.CString("/etc/passwd")
	bufAddr := t.Malloc(hpux.StatSize)
	if _, err := t.Syscall(hpux.SysStat, pathAddr, bufAddr); err != sys.OK {
		t.Errorf("stat: %v", err)
		return 1
	}
	raw := make([]byte, hpux.StatSize)
	t.Proc().CopyIn(bufAddr, raw)
	st := hpux.DecodeStat(raw)
	t.Printf("hpux stat: ino=%d mode=%o size=%d\n", st.Ino, st.Mode&0o7777, st.Size)
	return 0
}

// syscountMain issues an exact number of cheap system calls, for
// measurement harnesses: syscount N [call].
func syscountMain(t *libc.T) int {
	n := 1000
	if len(t.Args) > 1 {
		n = atoi(t.Args[1])
	}
	call := "getpid"
	if len(t.Args) > 2 {
		call = t.Args[2]
	}
	switch call {
	case "getpid":
		for i := 0; i < n; i++ {
			t.Syscall(sys.SYS_getpid)
		}
	case "gettimeofday":
		addr := t.Malloc(sys.TimevalSize)
		for i := 0; i < n; i++ {
			t.Syscall(sys.SYS_gettimeofday, addr, 0)
		}
	case "time-check":
		// Report gettimeofday seconds as little-endian for harnesses.
		tv, _ := t.Gettimeofday()
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], tv.Sec)
		t.Printf("%d\n", tv.Sec)
	}
	return 0
}
