package apps

import (
	"fmt"
	"strconv"
	"strings"

	"interpose/internal/libc"
	"interpose/internal/sys"
)

// asMain is the assembler: as INPUT.s OUTPUT.o. It resolves local labels
// to instruction offsets and emits an object file.
func asMain(t *libc.T) int {
	if len(t.Args) != 3 {
		t.Errorf("usage: as INPUT OUTPUT")
		return 2
	}
	data, err := t.ReadFile(t.Args[1])
	if err != sys.OK {
		t.Errorf("%s: %v", t.Args[1], err)
		return 1
	}
	funcs, aerr := Assemble(string(data))
	if aerr != nil {
		t.Errorf("%s: %v", t.Args[1], aerr)
		return 1
	}
	if err := t.WriteFile(t.Args[2], FormatVMObject(funcs), 0o644); err != sys.OK {
		t.Errorf("%s: %v", t.Args[2], err)
		return 1
	}
	return 0
}

// Assemble converts assembly text into object functions, resolving
// labels. Exported for the assembler's unit tests.
func Assemble(src string) ([]VMFunc, error) {
	var funcs []VMFunc
	var cur *VMFunc
	labels := map[string]int{}
	var fixups []struct {
		insn  int
		label string
	}

	finish := func() error {
		if cur == nil {
			return nil
		}
		for _, fx := range fixups {
			off, ok := labels[fx.label]
			if !ok {
				return fmt.Errorf("as: undefined label %s in %s", fx.label, cur.Name)
			}
			cur.Code[fx.insn].N = off
		}
		funcs = append(funcs, *cur)
		cur = nil
		labels = map[string]int{}
		fixups = fixups[:0]
		return nil
	}

	for lineno, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case ".func":
			if cur != nil {
				return nil, fmt.Errorf("as: line %d: nested .func", lineno+1)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("as: line %d: bad .func", lineno+1)
			}
			np, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("as: line %d: bad .func", lineno+1)
			}
			cur = &VMFunc{Name: fields[1], NParams: np}
		case ".endfunc":
			if cur == nil {
				return nil, fmt.Errorf("as: line %d: .endfunc outside function", lineno+1)
			}
			if len(fields) == 2 {
				nl, err := strconv.Atoi(fields[1])
				if err != nil {
					return nil, fmt.Errorf("as: line %d: bad .endfunc", lineno+1)
				}
				cur.NLocals = nl
			}
			if cur.NLocals < cur.NParams {
				cur.NLocals = cur.NParams
			}
			if err := finish(); err != nil {
				return nil, err
			}
		case "label":
			if cur == nil || len(fields) != 2 {
				return nil, fmt.Errorf("as: line %d: bad label", lineno+1)
			}
			labels[fields[1]] = len(cur.Code)
		case "jmp", "jz":
			if cur == nil || len(fields) != 2 {
				return nil, fmt.Errorf("as: line %d: bad %s", lineno+1, fields[0])
			}
			fixups = append(fixups, struct {
				insn  int
				label string
			}{len(cur.Code), fields[1]})
			cur.Code = append(cur.Code, VMInsn{Op: fields[0]})
		default:
			if cur == nil {
				return nil, fmt.Errorf("as: line %d: code outside function", lineno+1)
			}
			insn, err := parseVMInsn(line)
			if err != nil {
				return nil, fmt.Errorf("as: line %d: %v", lineno+1, err)
			}
			cur.Code = append(cur.Code, insn)
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("as: missing .endfunc for %s", cur.Name)
	}
	return funcs, nil
}

// ldMain is the link editor: ld -o OUTPUT INPUT.o... It merges objects,
// checks for duplicate and undefined symbols, and emits a runnable image.
func ldMain(t *libc.T) int {
	var out string
	var inputs []string
	args := t.Args[1:]
	for i := 0; i < len(args); i++ {
		if args[i] == "-o" && i+1 < len(args) {
			out = args[i+1]
			i++
			continue
		}
		inputs = append(inputs, args[i])
	}
	if out == "" || len(inputs) == 0 {
		t.Errorf("usage: ld -o OUTPUT INPUT.o...")
		return 2
	}
	var funcs []VMFunc
	for _, in := range inputs {
		data, err := t.ReadFile(in)
		if err != sys.OK {
			t.Errorf("%s: %v", in, err)
			return 1
		}
		fs, perr := ParseVMImage(data)
		if perr != nil {
			t.Errorf("%s: %v", in, perr)
			return 1
		}
		funcs = append(funcs, fs...)
	}
	if err := LinkCheck(funcs); err != nil {
		t.Errorf("%v", err)
		return 1
	}
	if err := t.WriteFile(out, FormatVMExecutable(funcs), 0o755); err != sys.OK {
		t.Errorf("%s: %v", out, err)
		return 1
	}
	return 0
}

// LinkCheck verifies that the merged program has a unique main and no
// undefined call targets.
func LinkCheck(funcs []VMFunc) error {
	defined := map[string]bool{}
	for _, f := range funcs {
		if defined[f.Name] {
			return fmt.Errorf("ld: duplicate symbol %s", f.Name)
		}
		defined[f.Name] = true
	}
	if !defined["main"] {
		return fmt.Errorf("ld: undefined symbol main")
	}
	for _, f := range funcs {
		for _, in := range f.Code {
			if in.Op == "call" && !defined[in.S] {
				return fmt.Errorf("ld: undefined symbol %s (from %s)", in.S, f.Name)
			}
		}
	}
	return nil
}

// vmrunMain is the stack-machine interpreter that linked executables name
// on their "#!" line: vmrun PROGRAM [args...].
func vmrunMain(t *libc.T) int {
	if len(t.Args) < 2 {
		t.Errorf("usage: vmrun PROGRAM")
		return 2
	}
	data, err := t.ReadFile(t.Args[1])
	if err != sys.OK {
		t.Errorf("%s: %v", t.Args[1], err)
		return 1
	}
	funcs, perr := ParseVMImage(data)
	if perr != nil {
		t.Errorf("%s: %v", t.Args[1], perr)
		return 1
	}
	code, rerr := RunVM(funcs, stdoutWriter{t.Stdout})
	if rerr != nil {
		t.Errorf("%s: %v", t.Args[1], rerr)
		return 1
	}
	return int(code) & 0xff
}

// stdoutWriter adapts a stdio stream to the VM's io.StringWriter output.
type stdoutWriter struct{ f *libc.FILE }

func (w stdoutWriter) WriteString(s string) (int, error) {
	w.f.WriteString(s)
	return len(s), nil
}

// ccMain is the compiler driver: cc [-c] [-o OUT] FILE... It runs cpp,
// cc1 and as for each .c source and ld for the final executable — each
// stage a separate program run by fork/exec, as in the original pipeline.
func ccMain(t *libc.T) int {
	compileOnly := false
	out := "a.out"
	outSet := false
	var files []string
	args := t.Args[1:]
	for i := 0; i < len(args); i++ {
		switch {
		case args[i] == "-c":
			compileOnly = true
		case args[i] == "-o" && i+1 < len(args):
			out = args[i+1]
			outSet = true
			i++
		default:
			files = append(files, args[i])
		}
	}
	if len(files) == 0 {
		t.Errorf("usage: cc [-c] [-o OUT] FILE...")
		return 2
	}

	run := func(argv ...string) bool {
		path, err := t.SearchPath(argv[0])
		if err != sys.OK {
			t.Errorf("%s: not found", argv[0])
			return false
		}
		st, e := t.System(path, argv)
		if e != sys.OK || !sys.WIfExited(st) || sys.WExitStatus(st) != 0 {
			return false
		}
		return true
	}

	var objects []string
	var temps []string
	defer func() {
		for _, f := range temps {
			t.Unlink(f)
		}
	}()
	for _, f := range files {
		if strings.HasSuffix(f, ".o") {
			objects = append(objects, f)
			continue
		}
		if !strings.HasSuffix(f, ".c") {
			t.Errorf("%s: unknown file type", f)
			return 1
		}
		base := strings.TrimSuffix(f, ".c")
		iFile, sFile, oFile := base+".i", base+".s", base+".o"
		if !run("cpp", f, iFile) {
			return 1
		}
		temps = append(temps, iFile)
		if !run("cc1", iFile, sFile) {
			return 1
		}
		temps = append(temps, sFile)
		if !run("as", sFile, oFile) {
			return 1
		}
		objects = append(objects, oFile)
		if !compileOnly {
			temps = append(temps, oFile)
		}
	}
	if compileOnly {
		return 0
	}
	if !outSet && len(files) == 1 && strings.HasSuffix(files[0], ".c") {
		out = "a.out"
	}
	ldArgs := append([]string{"ld", "-o", out}, objects...)
	if !run(ldArgs...) {
		return 1
	}
	return 0
}
