// Package apps contains the application programs of the simulated system:
// the unmodified binaries that run under interposition agents. Every
// program is written against libc only, issuing raw system calls against
// whatever instance of the system interface it finds itself on — it
// cannot tell whether agents are interposed.
//
// The package registers each program as a loadable image and provides
// world-building helpers that install them in /bin and generate the
// paper's evaluation workloads.
package apps

import (
	"fmt"
	"sort"
	"strings"

	"interpose/internal/libc"
	"interpose/internal/sys"
)

// echoMain prints its arguments.
func echoMain(t *libc.T) int {
	t.Println(strings.Join(t.Args[1:], " "))
	return 0
}

// trueMain succeeds.
func trueMain(t *libc.T) int { return 0 }

// falseMain fails.
func falseMain(t *libc.T) int { return 1 }

// pwdMain prints the working directory (via the library getwd walk).
func pwdMain(t *libc.T) int {
	wd, err := t.Getwd()
	if err != sys.OK {
		t.Errorf("getwd: %v", err)
		return 1
	}
	t.Println(wd)
	return 0
}

// catMain concatenates files (or standard input) to standard output.
func catMain(t *libc.T) int {
	files := t.Args[1:]
	if len(files) == 0 {
		files = []string{"-"}
	}
	status := 0
	for _, name := range files {
		fd := 0
		if name != "-" {
			var err sys.Errno
			fd, err = t.Open(name, sys.O_RDONLY, 0)
			if err != sys.OK {
				t.Errorf("%s: %v", name, err)
				status = 1
				continue
			}
		}
		buf := make([]byte, 4096)
		for {
			n, err := t.ReadRetry(fd, buf)
			if err != sys.OK {
				t.Errorf("%s: read: %v", name, err)
				status = 1
				break
			}
			if n == 0 {
				break
			}
			t.Stdout.Write(buf[:n])
		}
		if name != "-" {
			t.Close(fd)
		}
	}
	return status
}

// wcMain counts lines, words and bytes.
func wcMain(t *libc.T) int {
	status := 0
	for _, name := range t.Args[1:] {
		data, err := t.ReadFile(name)
		if err != sys.OK {
			t.Errorf("%s: %v", name, err)
			status = 1
			continue
		}
		lines, words := 0, 0
		inWord := false
		for _, b := range data {
			if b == '\n' {
				lines++
			}
			if b == ' ' || b == '\t' || b == '\n' {
				inWord = false
			} else if !inWord {
				inWord = true
				words++
			}
		}
		t.Printf("%7d %7d %7d %s\n", lines, words, len(data), name)
	}
	return status
}

// lsMain lists directories (with -l for a long listing, -a for dot files).
func lsMain(t *libc.T) int {
	long, all := false, false
	var paths []string
	for _, a := range t.Args[1:] {
		switch {
		case strings.HasPrefix(a, "-"):
			long = long || strings.Contains(a, "l")
			all = all || strings.Contains(a, "a")
		default:
			paths = append(paths, a)
		}
	}
	if len(paths) == 0 {
		paths = []string{"."}
	}
	status := 0
	for _, p := range paths {
		st, err := t.Stat(p)
		if err != sys.OK {
			t.Errorf("%s: %v", p, err)
			status = 1
			continue
		}
		if !st.IsDir() {
			printEntry(t, long, p, st)
			continue
		}
		names, err := t.ReadDir(p)
		if err != sys.OK {
			t.Errorf("%s: %v", p, err)
			status = 1
			continue
		}
		sort.Strings(names)
		for _, n := range names {
			if !all && strings.HasPrefix(n, ".") {
				continue
			}
			if long {
				est, err := t.Lstat(libc.JoinPath(p, n))
				if err != sys.OK {
					t.Errorf("%s: %v", n, err)
					continue
				}
				printEntry(t, true, n, est)
			} else {
				t.Println(n)
			}
		}
	}
	return status
}

func printEntry(t *libc.T, long bool, name string, st sys.Stat) {
	if !long {
		t.Println(name)
		return
	}
	t.Printf("%s %3d %4d %4d %8d %s\n", modeString(st.Mode), st.Nlink, st.UID, st.GID, st.Size, name)
}

func modeString(mode uint32) string {
	var kind byte
	switch mode & sys.S_IFMT {
	case sys.S_IFDIR:
		kind = 'd'
	case sys.S_IFLNK:
		kind = 'l'
	case sys.S_IFCHR:
		kind = 'c'
	case sys.S_IFIFO:
		kind = 'p'
	default:
		kind = '-'
	}
	bits := []byte("rwxrwxrwx")
	for i := 0; i < 9; i++ {
		if mode&(1<<(8-i)) == 0 {
			bits[i] = '-'
		}
	}
	return string(kind) + string(bits)
}

// cpMain copies a file.
func cpMain(t *libc.T) int {
	if len(t.Args) != 3 {
		t.Errorf("usage: cp FROM TO")
		return 2
	}
	from, to := t.Args[1], t.Args[2]
	data, err := t.ReadFile(from)
	if err != sys.OK {
		t.Errorf("%s: %v", from, err)
		return 1
	}
	if st, err := t.Stat(to); err == sys.OK && st.IsDir() {
		to = libc.JoinPath(to, libc.Basename(from))
	}
	mode := uint32(0o644)
	if st, err := t.Stat(from); err == sys.OK {
		mode = st.Mode & 0o777
	}
	if err := t.WriteFile(to, data, mode); err != sys.OK {
		t.Errorf("%s: %v", to, err)
		return 1
	}
	return 0
}

// mvMain renames a file.
func mvMain(t *libc.T) int {
	if len(t.Args) != 3 {
		t.Errorf("usage: mv FROM TO")
		return 2
	}
	if err := t.Rename(t.Args[1], t.Args[2]); err != sys.OK {
		t.Errorf("%v", err)
		return 1
	}
	return 0
}

// rmMain removes files (-r for directories).
func rmMain(t *libc.T) int {
	recursive := false
	status := 0
	for _, a := range t.Args[1:] {
		if a == "-r" {
			recursive = true
			continue
		}
		if err := rmPath(t, a, recursive); err != sys.OK {
			t.Errorf("%s: %v", a, err)
			status = 1
		}
	}
	return status
}

func rmPath(t *libc.T, path string, recursive bool) sys.Errno {
	st, err := t.Lstat(path)
	if err != sys.OK {
		return err
	}
	if st.IsDir() {
		if !recursive {
			return sys.EISDIR
		}
		names, err := t.ReadDir(path)
		if err != sys.OK {
			return err
		}
		for _, n := range names {
			if e := rmPath(t, libc.JoinPath(path, n), true); e != sys.OK {
				return e
			}
		}
		return t.Rmdir(path)
	}
	return t.Unlink(path)
}

// lnMain makes links (-s for symbolic).
func lnMain(t *libc.T) int {
	args := t.Args[1:]
	symbolic := false
	if len(args) > 0 && args[0] == "-s" {
		symbolic = true
		args = args[1:]
	}
	if len(args) != 2 {
		t.Errorf("usage: ln [-s] TARGET LINK")
		return 2
	}
	var err sys.Errno
	if symbolic {
		err = t.Symlink(args[0], args[1])
	} else {
		err = t.Link(args[0], args[1])
	}
	if err != sys.OK {
		t.Errorf("%v", err)
		return 1
	}
	return 0
}

// touchMain creates files or updates their times.
func touchMain(t *libc.T) int {
	status := 0
	for _, a := range t.Args[1:] {
		if _, err := t.Stat(a); err == sys.ENOENT {
			fd, err := t.Open(a, sys.O_WRONLY|sys.O_CREAT, 0o644)
			if err != sys.OK {
				t.Errorf("%s: %v", a, err)
				status = 1
				continue
			}
			t.Close(fd)
			continue
		}
		if err := t.Utimes(a, sys.Timeval{}, sys.Timeval{}); err != sys.OK {
			t.Errorf("%s: %v", a, err)
			status = 1
		}
	}
	return status
}

// mkdirMain creates directories (-p for parents).
func mkdirMain(t *libc.T) int {
	parents := false
	status := 0
	for _, a := range t.Args[1:] {
		if a == "-p" {
			parents = true
			continue
		}
		var err sys.Errno
		if parents {
			err = t.MkdirAll(a, 0o755)
		} else {
			err = t.Mkdir(a, 0o755)
		}
		if err != sys.OK {
			t.Errorf("%s: %v", a, err)
			status = 1
		}
	}
	return status
}

// dateMain prints the time of day as seconds since the epoch.
func dateMain(t *libc.T) int {
	tv, err := t.Gettimeofday()
	if err != sys.OK {
		t.Errorf("%v", err)
		return 1
	}
	t.Printf("%d\n", tv.Sec)
	return 0
}

// hostnameMain prints the hostname.
func hostnameMain(t *libc.T) int {
	h, err := t.Gethostname()
	if err != sys.OK {
		t.Errorf("%v", err)
		return 1
	}
	t.Println(h)
	return 0
}

// killMain sends a signal: kill [-SIG] PID.
func killMain(t *libc.T) int {
	sig := sys.SIGTERM
	args := t.Args[1:]
	if len(args) > 0 && strings.HasPrefix(args[0], "-") {
		fmt.Sscanf(args[0][1:], "%d", &sig)
		args = args[1:]
	}
	status := 0
	for _, a := range args {
		var pid int
		fmt.Sscanf(a, "%d", &pid)
		if err := t.Kill(pid, sig); err != sys.OK {
			t.Errorf("%s: %v", a, err)
			status = 1
		}
	}
	return status
}

// grepMain prints lines containing a fixed pattern.
func grepMain(t *libc.T) int {
	if len(t.Args) < 2 {
		t.Errorf("usage: grep PATTERN [FILE...]")
		return 2
	}
	pat := t.Args[1]
	files := t.Args[2:]
	if len(files) == 0 {
		files = []string{"-"}
	}
	found := false
	for _, name := range files {
		var f *libc.FILE
		if name == "-" {
			f = t.Stdin
		} else {
			var err sys.Errno
			f, err = t.Fopen(name, "r")
			if err != sys.OK {
				t.Errorf("%s: %v", name, err)
				continue
			}
		}
		for {
			line, ok := f.ReadLine()
			if !ok {
				break
			}
			if strings.Contains(line, pat) {
				found = true
				if len(files) > 1 {
					t.Printf("%s:%s\n", name, line)
				} else {
					t.Println(line)
				}
			}
		}
		if name != "-" {
			f.Close()
		}
	}
	if found {
		return 0
	}
	return 1
}

// headMain prints the first 10 lines of each file.
func headMain(t *libc.T) int {
	for _, name := range t.Args[1:] {
		f, err := t.Fopen(name, "r")
		if err != sys.OK {
			t.Errorf("%s: %v", name, err)
			return 1
		}
		for i := 0; i < 10; i++ {
			line, ok := f.ReadLine()
			if !ok {
				break
			}
			t.Println(line)
		}
		f.Close()
	}
	return 0
}

// teeMain copies standard input to standard output and the named files.
func teeMain(t *libc.T) int {
	appendMode := false
	var files []*libc.FILE
	for _, a := range t.Args[1:] {
		if a == "-a" {
			appendMode = true
			continue
		}
		mode := "w"
		if appendMode {
			mode = "a"
		}
		f, err := t.Fopen(a, mode)
		if err != sys.OK {
			t.Errorf("%s: %v", a, err)
			return 1
		}
		files = append(files, f)
	}
	buf := make([]byte, 4096)
	for {
		n, err := t.ReadRetry(0, buf)
		if err != sys.OK || n == 0 {
			break
		}
		t.Stdout.Write(buf[:n])
		for _, f := range files {
			f.Write(buf[:n])
		}
	}
	for _, f := range files {
		f.Close()
	}
	return 0
}

// sortMain sorts the lines of its input files (or standard input).
func sortMain(t *libc.T) int {
	reverse := false
	var lines []string
	args := t.Args[1:]
	var names []string
	for _, a := range args {
		if a == "-r" {
			reverse = true
			continue
		}
		names = append(names, a)
	}
	readFrom := func(f *libc.FILE) {
		for {
			line, ok := f.ReadLine()
			if !ok {
				return
			}
			lines = append(lines, line)
		}
	}
	if len(names) == 0 {
		readFrom(t.Stdin)
	}
	for _, name := range names {
		f, err := t.Fopen(name, "r")
		if err != sys.OK {
			t.Errorf("%s: %v", name, err)
			return 1
		}
		readFrom(f)
		f.Close()
	}
	sort.Strings(lines)
	if reverse {
		for i, j := 0, len(lines)-1; i < j; i, j = i+1, j-1 {
			lines[i], lines[j] = lines[j], lines[i]
		}
	}
	for _, l := range lines {
		t.Println(l)
	}
	return 0
}

// uniqMain drops adjacent duplicate lines (-c counts them).
func uniqMain(t *libc.T) int {
	count := false
	var f *libc.FILE = t.Stdin
	for _, a := range t.Args[1:] {
		if a == "-c" {
			count = true
			continue
		}
		var err sys.Errno
		f, err = t.Fopen(a, "r")
		if err != sys.OK {
			t.Errorf("%s: %v", a, err)
			return 1
		}
	}
	var prev string
	n := 0
	emit := func() {
		if n == 0 {
			return
		}
		if count {
			t.Printf("%7d %s\n", n, prev)
		} else {
			t.Println(prev)
		}
	}
	for {
		line, ok := f.ReadLine()
		if !ok {
			break
		}
		if n > 0 && line == prev {
			n++
			continue
		}
		emit()
		prev, n = line, 1
	}
	emit()
	return 0
}

// sleepMain suspends for a number of seconds (decimals accepted).
func sleepMain(t *libc.T) int {
	if len(t.Args) < 2 {
		t.Errorf("usage: sleep SECONDS")
		return 2
	}
	arg := t.Args[1]
	whole, frac, _ := strings.Cut(arg, ".")
	usec := uint32(atoi(whole)) * 1_000_000
	if frac != "" {
		scale := uint32(100_000)
		for _, ch := range frac {
			if ch < '0' || ch > '9' || scale == 0 {
				break
			}
			usec += uint32(ch-'0') * scale
			scale /= 10
		}
	}
	t.SleepUsec(usec)
	return 0
}

// sigplayMain exercises signal handling: installs a handler for SIGUSR1,
// signals itself, and reports.
func sigplayMain(t *libc.T) int {
	got := 0
	t.Signal(sys.SIGUSR1, func(ht *libc.T, sig int) {
		got++
		ht.Printf("caught %s\n", sys.SignalName(sig))
	})
	t.Kill(t.Getpid(), sys.SIGUSR1)
	t.Printf("handled %d signals\n", got)

	// Blocked signals stay pending until unmasked.
	t.Sigblock(sys.SigMask(sys.SIGUSR1))
	t.Kill(t.Getpid(), sys.SIGUSR1)
	t.Printf("blocked, handled %d\n", got)
	t.Sigsetmask(0)
	t.Printf("unblocked, handled %d\n", got)
	return 0
}
