package apps

import (
	"strings"

	"interpose/internal/libc"
	"interpose/internal/sys"
)

// cppMain is the C preprocessor of the toy compiler pipeline:
// cpp INPUT OUTPUT. It handles #include "file", object-like #define,
// #undef, #ifdef/#ifndef/#else/#endif, and strips // and /* */ comments.
func cppMain(t *libc.T) int {
	if len(t.Args) != 3 {
		t.Errorf("usage: cpp INPUT OUTPUT")
		return 2
	}
	p := &cppState{t: t, defs: map[string]string{}}
	var out strings.Builder
	if !p.process(t.Args[1], &out, 0) {
		return 1
	}
	if err := t.WriteFile(t.Args[2], []byte(out.String()), 0o644); err != sys.OK {
		t.Errorf("%s: %v", t.Args[2], err)
		return 1
	}
	return 0
}

type cppState struct {
	t    *libc.T
	defs map[string]string
	// conditional-inclusion stack: true = emitting
	conds []bool
}

func (p *cppState) emitting() bool {
	for _, c := range p.conds {
		if !c {
			return false
		}
	}
	return true
}

func (p *cppState) process(path string, out *strings.Builder, depth int) bool {
	if depth > 8 {
		p.t.Errorf("%s: includes nested too deeply", path)
		return false
	}
	data, err := p.t.ReadFile(path)
	if err != sys.OK {
		p.t.Errorf("%s: %v", path, err)
		return false
	}
	src := stripComments(string(data))
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "#") {
			fields := libc.Fields(trimmed[1:])
			if len(fields) == 0 {
				continue
			}
			switch fields[0] {
			case "include":
				if !p.emitting() {
					continue
				}
				name := strings.Trim(strings.TrimSpace(trimmed[len("#include"):]), `"<>`)
				inc := name
				if !strings.HasPrefix(inc, "/") {
					inc = libc.JoinPath(libc.Dirname(path), inc)
				}
				if !p.process(inc, out, depth+1) {
					return false
				}
			case "define":
				if p.emitting() && len(fields) >= 2 {
					val := ""
					if len(fields) > 2 {
						val = strings.Join(fields[2:], " ")
					}
					p.defs[fields[1]] = val
				}
			case "undef":
				if p.emitting() && len(fields) >= 2 {
					delete(p.defs, fields[1])
				}
			case "ifdef":
				_, ok := p.defs[field(fields, 1)]
				p.conds = append(p.conds, ok)
			case "ifndef":
				_, ok := p.defs[field(fields, 1)]
				p.conds = append(p.conds, !ok)
			case "else":
				if n := len(p.conds); n > 0 {
					p.conds[n-1] = !p.conds[n-1]
				}
			case "endif":
				if n := len(p.conds); n > 0 {
					p.conds = p.conds[:n-1]
				}
			default:
				p.t.Errorf("%s: unknown directive #%s", path, fields[0])
				return false
			}
			continue
		}
		if !p.emitting() {
			continue
		}
		out.WriteString(p.substitute(line))
		out.WriteString("\n")
	}
	return true
}

func field(fields []string, i int) string {
	if i < len(fields) {
		return fields[i]
	}
	return ""
}

// substitute replaces defined identifiers token-wise, leaving string
// literals alone.
func (p *cppState) substitute(line string) string {
	var b strings.Builder
	i := 0
	for i < len(line) {
		ch := line[i]
		switch {
		case ch == '"':
			j := i + 1
			for j < len(line) && line[j] != '"' {
				j++
			}
			if j < len(line) {
				j++
			}
			b.WriteString(line[i:j])
			i = j
		case isIdentStart(ch):
			j := i
			for j < len(line) && isIdentPart(line[j]) {
				j++
			}
			word := line[i:j]
			if val, ok := p.defs[word]; ok {
				b.WriteString(val)
			} else {
				b.WriteString(word)
			}
			i = j
		default:
			b.WriteByte(ch)
			i++
		}
	}
	return b.String()
}

func isIdentStart(b byte) bool {
	return b == '_' || b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z'
}

func isIdentPart(b byte) bool { return isIdentStart(b) || b >= '0' && b <= '9' }

// stripComments removes // and /* */ comments, preserving newlines so
// diagnostics keep line numbers meaningful.
func stripComments(src string) string {
	var b strings.Builder
	i := 0
	for i < len(src) {
		switch {
		case src[i] == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' && src[j] != '\n' {
				j++
			}
			if j < len(src) && src[j] == '"' {
				j++
			}
			b.WriteString(src[i:j])
			i = j
		case strings.HasPrefix(src[i:], "//"):
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case strings.HasPrefix(src[i:], "/*"):
			j := strings.Index(src[i+2:], "*/")
			if j < 0 {
				i = len(src)
				break
			}
			for _, ch := range src[i : i+2+j+2] {
				if ch == '\n' {
					b.WriteByte('\n')
				}
			}
			i += 2 + j + 2
		default:
			b.WriteByte(src[i])
			i++
		}
	}
	return b.String()
}
