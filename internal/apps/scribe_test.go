package apps

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestScribeCommandParsing(t *testing.T) {
	cases := []struct{ in, cmd, arg string }{
		{"@Chapter(Intro)", "Chapter", "Intro"},
		{"@i[emphasis]", "i", "emphasis"},
		{"@End(itemize)", "End", "itemize"},
		{"@newpage", "newpage", ""},
		{"@Include(ch1.mss)", "Include", "ch1.mss"},
	}
	for _, c := range cases {
		cmd, arg := scribeCommand(c.in)
		if cmd != c.cmd || arg != c.arg {
			t.Errorf("scribeCommand(%q) = %q,%q want %q,%q", c.in, cmd, arg, c.cmd, c.arg)
		}
	}
}

func TestScribeFaces(t *testing.T) {
	got := scribeFaces("plain @i[italic words] and @b[bold] end")
	if got != "plain _italic words_ and BOLD end" {
		t.Fatalf("faces = %q", got)
	}
	// Unterminated face degrades gracefully.
	if out := scribeFaces("@i[oops"); !strings.Contains(out, "oops") {
		t.Fatalf("unterminated = %q", out)
	}
}

func TestJustifyLineExactWidth(t *testing.T) {
	f := func(seed uint16) bool {
		// Build 2-6 words of 1-8 letters.
		n := int(seed%5) + 2
		var words []string
		total := 0
		for i := 0; i < n; i++ {
			w := strings.Repeat("w", int(seed>>uint(i))%8+1)
			words = append(words, w)
			total += len(w)
		}
		width := total + n - 1 + int(seed%10) // at least one space per gap
		line := justifyLine(words, width)
		return len(line) == width &&
			strings.Join(strings.Fields(line), " ") == strings.Join(words, " ")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScribeFillRespectsWidth(t *testing.T) {
	d := &scribeDoc{width: 40, pageLen: 1000}
	text := strings.Repeat("word another slightly longer words ", 20)
	d.fill(text, "    ", "", true)
	for i, line := range d.out {
		if len(line) > 40 {
			t.Fatalf("line %d over width: %q (%d)", i, line, len(line))
		}
	}
	// Justified interior lines are exactly the width.
	full := 0
	for _, line := range d.out[:len(d.out)-1] {
		if len(line) == 40 {
			full++
		}
	}
	if full == 0 {
		t.Fatal("no justified lines")
	}
}

func TestScribeOverlongWord(t *testing.T) {
	d := &scribeDoc{width: 10, pageLen: 1000}
	d.fill("supercalifragilistic ok", "", "", true)
	if len(d.out) < 2 {
		t.Fatalf("overlong word handling: %q", d.out)
	}
}

func TestScribePagination(t *testing.T) {
	d := &scribeDoc{width: 72, pageLen: 5}
	d.page = 1
	for i := 0; i < 12; i++ {
		d.emit("line")
	}
	d.pageBreak()
	// 12 lines at 5 per page = 3 pages, each closed with footer + formfeed.
	if d.page != 4 {
		t.Fatalf("page = %d", d.page)
	}
	ff := 0
	for _, l := range d.out {
		if l == "\f" {
			ff++
		}
	}
	if ff != 3 {
		t.Fatalf("formfeeds = %d", ff)
	}
}

func TestGenDissertationDeterministic(t *testing.T) {
	k1, err := NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	p1, err := GenDissertation(k1, "/doc", 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := GenDissertation(k2, "/doc", 2, 2, 2)
	d1, _ := k1.ReadFile(p1)
	d2, _ := k2.ReadFile(p2)
	c1, _ := k1.ReadFile("/doc/chapter01.mss")
	c2, _ := k2.ReadFile("/doc/chapter01.mss")
	if string(d1) != string(d2) || string(c1) != string(c2) {
		t.Fatal("workload generation not deterministic")
	}
}

func TestExpectedProgOutputMatchesGenerator(t *testing.T) {
	// The oracle in ExpectedProgOutput matches what the generated MiniC
	// actually computes, via the in-process pipeline.
	k, err := NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	if err := GenMakeTree(k, "/src", 1); err != nil {
		t.Fatal(err)
	}
	mainSrc, _ := k.ReadFile("/src/prog1_main.c")
	subSrc, _ := k.ReadFile("/src/prog1_sub.c")
	defs, _ := k.ReadFile("/src/defs.h")
	// Poor man's cpp: replace the include and macros.
	expand := func(src string) string {
		s := strings.ReplaceAll(string(src), `#include "defs.h"`, "")
		s = strings.ReplaceAll(s, "LIMIT", "10")
		s = strings.ReplaceAll(s, "STEP", "1")
		return stripComments(s)
	}
	_ = defs
	asm1, err := CompileMiniC(expand(string(mainSrc)))
	if err != nil {
		t.Fatal(err)
	}
	asm2, err := CompileMiniC(expand(string(subSrc)))
	if err != nil {
		t.Fatal(err)
	}
	f1, _ := Assemble(asm1)
	f2, _ := Assemble(asm2)
	var out strings.Builder
	if _, err := RunVM(append(f1, f2...), &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != ExpectedProgOutput(1) {
		t.Fatalf("oracle mismatch: %q vs %q", out.String(), ExpectedProgOutput(1))
	}
}
