package apps

import (
	"strings"

	"interpose/internal/libc"
	"interpose/internal/sys"
)

// shMain is a small Bourne-flavoured shell: simple commands with
// arguments, $VAR expansion, redirections (<, >, >>), pipelines (|),
// sequencing (;), conditionals (&& and ||), comments, and the builtins
// cd, exit, set, echo, and umask. It runs scripts ("sh file" or "#!"),
// one-liners ("sh -c cmd"), or standard input.
func shMain(t *libc.T) int {
	vars := map[string]string{}
	for _, kv := range t.Env {
		if i := strings.IndexByte(kv, '='); i > 0 {
			vars[kv[:i]] = kv[i+1:]
		}
	}

	run := func(text string) int {
		status := 0
		for _, line := range strings.Split(text, "\n") {
			status = shLine(t, vars, line)
		}
		return status
	}

	args := t.Args[1:]
	switch {
	case len(args) >= 2 && args[0] == "-c":
		return run(strings.Join(args[1:], " "))
	case len(args) >= 1:
		data, err := t.ReadFile(args[0])
		if err != sys.OK {
			t.Errorf("%s: %v", args[0], err)
			return 127
		}
		return run(string(data))
	default:
		data, err := t.Stdin.ReadAll()
		if err != sys.OK {
			return 127
		}
		return run(string(data))
	}
}

// shLine executes one line: sequences split on ';', then && / || chains.
func shLine(t *libc.T, vars map[string]string, line string) int {
	status := 0
	for _, seq := range splitTop(line, ';') {
		seq = strings.TrimSpace(seq)
		if seq == "" || strings.HasPrefix(seq, "#") {
			continue
		}
		status = shAndOr(t, vars, seq)
	}
	return status
}

// shAndOr executes an && / || chain.
func shAndOr(t *libc.T, vars map[string]string, s string) int {
	status := 0
	prevOp := "" // connective between the previous command and this one
	for len(s) > 0 {
		var op, cmd string
		andIdx := strings.Index(s, "&&")
		orIdx := strings.Index(s, "||")
		switch {
		case andIdx >= 0 && (orIdx < 0 || andIdx < orIdx):
			cmd, s, op = s[:andIdx], s[andIdx+2:], "&&"
		case orIdx >= 0:
			cmd, s, op = s[:orIdx], s[orIdx+2:], "||"
		default:
			cmd, s = s, ""
		}
		runIt := prevOp == "" ||
			(prevOp == "&&" && status == 0) ||
			(prevOp == "||" && status != 0)
		if runIt {
			status = shPipeline(t, vars, strings.TrimSpace(cmd))
		}
		prevOp = op
	}
	return status
}

// shPipeline executes a pipeline of one or more commands.
func shPipeline(t *libc.T, vars map[string]string, s string) int {
	stages := splitTop(s, '|')
	if len(stages) == 1 {
		return shSimple(t, vars, stages[0], 0, 1)
	}
	// cmd0 | cmd1 | ... : children chained through pipes; the parent
	// waits for the last stage's status.
	var pids []int
	prevRead := -1
	for i, stage := range stages {
		stage := strings.TrimSpace(stage)
		var r, w int
		lastStage := i == len(stages)-1
		if !lastStage {
			var err sys.Errno
			r, w, err = t.Pipe()
			if err != sys.OK {
				t.Errorf("pipe: %v", err)
				return 127
			}
		}
		in, out := 0, 1
		if prevRead >= 0 {
			in = prevRead
		}
		if !lastStage {
			out = w
		}
		pid, err := t.Fork(func(ct *libc.T) {
			if in != 0 {
				ct.Dup2(in, 0)
				ct.Close(in)
			}
			if out != 1 {
				ct.Dup2(out, 1)
				ct.Close(out)
			}
			if !lastStage {
				ct.Close(r)
			}
			ct.Exit(shSimple(ct, vars, stage, 0, 1))
		})
		if err != sys.OK {
			t.Errorf("fork: %v", err)
			return 127
		}
		pids = append(pids, pid)
		if prevRead >= 0 {
			t.Close(prevRead)
		}
		if !lastStage {
			t.Close(w)
			prevRead = r
		}
	}
	status := 0
	for i, pid := range pids {
		_, st, _ := t.Waitpid(pid)
		if i == len(pids)-1 {
			status = sys.WExitStatus(st)
		}
	}
	return status
}

// shSimple executes one simple command with redirections.
func shSimple(t *libc.T, vars map[string]string, s string, inFD, outFD int) int {
	words := shWords(s, vars)
	if len(words) == 0 {
		return 0
	}

	// Collect redirections.
	var argv []string
	inFile, outFile := "", ""
	appendOut := false
	for i := 0; i < len(words); i++ {
		switch words[i] {
		case "<":
			if i+1 < len(words) {
				inFile = words[i+1]
				i++
			}
		case ">":
			if i+1 < len(words) {
				outFile = words[i+1]
				i++
			}
		case ">>":
			if i+1 < len(words) {
				outFile = words[i+1]
				appendOut = true
				i++
			}
		default:
			argv = append(argv, words[i])
		}
	}
	if len(argv) == 0 {
		return 0
	}

	// Builtins run in this process.
	switch argv[0] {
	case "cd":
		dir := "/"
		if len(argv) > 1 {
			dir = argv[1]
		}
		if err := t.Chdir(dir); err != sys.OK {
			t.Errorf("cd: %s: %v", dir, err)
			return 1
		}
		return 0
	case "exit":
		code := 0
		if len(argv) > 1 {
			code = atoi(argv[1])
		}
		t.Exit(code)
	case "set":
		if len(argv) > 1 {
			if i := strings.IndexByte(argv[1], '='); i > 0 {
				vars[argv[1][:i]] = argv[1][i+1:]
			}
		}
		return 0
	case "umask":
		if len(argv) > 1 {
			var m uint32
			for _, ch := range argv[1] {
				m = m*8 + uint32(ch-'0')
			}
			t.Umask(m)
		}
		return 0
	}

	path, err := t.SearchPath(argv[0])
	if err != sys.OK {
		t.Errorf("%s: command not found", argv[0])
		return 127
	}
	env := append([]string(nil), t.Env...)
	pid, ferr := t.Fork(func(ct *libc.T) {
		if inFile != "" {
			fd, err := ct.Open(inFile, sys.O_RDONLY, 0)
			if err != sys.OK {
				ct.Errorf("%s: %v", inFile, err)
				ct.Exit(1)
			}
			ct.Dup2(fd, 0)
			ct.Close(fd)
		}
		if outFile != "" {
			flags := sys.O_WRONLY | sys.O_CREAT
			if appendOut {
				flags |= sys.O_APPEND
			} else {
				flags |= sys.O_TRUNC
			}
			fd, err := ct.Open(outFile, flags, 0o644)
			if err != sys.OK {
				ct.Errorf("%s: %v", outFile, err)
				ct.Exit(1)
			}
			ct.Dup2(fd, 1)
			ct.Close(fd)
		}
		e := ct.Exec(path, argv, env)
		ct.Errorf("%s: %v", path, e)
		ct.Exit(127)
	})
	if ferr != sys.OK {
		t.Errorf("fork: %v", ferr)
		return 127
	}
	_, st, _ := t.Waitpid(pid)
	if sys.WIfExited(st) {
		return sys.WExitStatus(st)
	}
	return 128 + sys.WTermSig(st)
}

// shWords tokenizes with quoting and $VAR expansion.
func shWords(s string, vars map[string]string) []string {
	var words []string
	var cur strings.Builder
	have := false
	i := 0
	flush := func() {
		if have {
			words = append(words, cur.String())
			cur.Reset()
			have = false
		}
	}
	for i < len(s) {
		ch := s[i]
		switch {
		case ch == ' ' || ch == '\t':
			flush()
			i++
		case ch == '\'':
			have = true
			i++
			for i < len(s) && s[i] != '\'' {
				cur.WriteByte(s[i])
				i++
			}
			i++
		case ch == '"':
			have = true
			i++
			for i < len(s) && s[i] != '"' {
				if s[i] == '$' {
					name, next := varName(s, i+1)
					cur.WriteString(vars[name])
					i = next
					continue
				}
				cur.WriteByte(s[i])
				i++
			}
			i++
		case ch == '$':
			have = true
			name, next := varName(s, i+1)
			cur.WriteString(vars[name])
			i = next
		default:
			have = true
			cur.WriteByte(ch)
			i++
		}
	}
	flush()
	return words
}

func varName(s string, i int) (string, int) {
	start := i
	for i < len(s) && (isAlnum(s[i]) || s[i] == '_') {
		i++
	}
	return s[start:i], i
}

func isAlnum(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}

// splitTop splits on sep outside quotes.
func splitTop(s string, sep byte) []string {
	var out []string
	depth := byte(0)
	start := 0
	for i := 0; i < len(s); i++ {
		switch {
		case depth == 0 && (s[i] == '\'' || s[i] == '"'):
			depth = s[i]
		case depth != 0 && s[i] == depth:
			depth = 0
		case depth == 0 && s[i] == sep:
			// "||" is not a ';'-like separator for '|'.
			if sep == '|' && (i+1 < len(s) && s[i+1] == '|' || i > 0 && s[i-1] == '|') {
				continue
			}
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	out = append(out, s[start:])
	return out
}

func atoi(s string) int {
	n := 0
	neg := false
	for i, ch := range s {
		if i == 0 && ch == '-' {
			neg = true
			continue
		}
		if ch < '0' || ch > '9' {
			break
		}
		n = n*10 + int(ch-'0')
	}
	if neg {
		return -n
	}
	return n
}
