package apps

import (
	"fmt"
	"strconv"
	"strings"
)

// The toy pipeline's object and executable format: a textual stack-machine
// program. Object files (produced by as) and executables (produced by ld)
// share the encoding; executables additionally begin with an interpreter
// line so that execve runs them through /bin/vmrun.

// VMInsn is one stack-machine instruction.
type VMInsn struct {
	Op string
	N  int    // numeric operand (push value, slot, jump target, nargs)
	S  string // symbol operand (call target, prints text)
}

// VMFunc is one compiled function.
type VMFunc struct {
	Name    string
	NParams int
	NLocals int
	Code    []VMInsn
}

// objMagic heads object files; exeInterp heads linked executables.
const (
	objMagic  = "OBJ1"
	exeInterp = "#!/bin/vmrun"
)

// FormatVMObject encodes functions as an object file.
func FormatVMObject(funcs []VMFunc) []byte {
	var b strings.Builder
	b.WriteString(objMagic + "\n")
	writeVMFuncs(&b, funcs)
	return []byte(b.String())
}

// FormatVMExecutable encodes functions as a runnable program image.
func FormatVMExecutable(funcs []VMFunc) []byte {
	var b strings.Builder
	b.WriteString(exeInterp + "\n" + objMagic + "\n")
	writeVMFuncs(&b, funcs)
	return []byte(b.String())
}

func writeVMFuncs(b *strings.Builder, funcs []VMFunc) {
	for _, f := range funcs {
		fmt.Fprintf(b, "func %s %d %d %d\n", f.Name, f.NParams, f.NLocals, len(f.Code))
		for _, in := range f.Code {
			switch in.Op {
			case "push", "load", "store", "jmp", "jz":
				fmt.Fprintf(b, "%s %d\n", in.Op, in.N)
			case "call":
				fmt.Fprintf(b, "call %s %d\n", in.S, in.N)
			case "prints":
				fmt.Fprintf(b, "prints %s\n", strconv.Quote(in.S))
			default:
				fmt.Fprintf(b, "%s\n", in.Op)
			}
		}
	}
}

// ParseVMImage decodes an object file or executable (the interpreter line,
// if present, is skipped).
func ParseVMImage(data []byte) ([]VMFunc, error) {
	lines := strings.Split(string(data), "\n")
	i := 0
	if i < len(lines) && strings.HasPrefix(lines[i], "#!") {
		i++
	}
	if i >= len(lines) || lines[i] != objMagic {
		return nil, fmt.Errorf("vm: bad magic")
	}
	i++
	var funcs []VMFunc
	for i < len(lines) {
		line := strings.TrimSpace(lines[i])
		i++
		if line == "" {
			continue
		}
		var f VMFunc
		var n int
		if _, err := fmt.Sscanf(line, "func %s %d %d %d", &f.Name, &f.NParams, &f.NLocals, &n); err != nil {
			return nil, fmt.Errorf("vm: bad func header %q", line)
		}
		for j := 0; j < n; j++ {
			if i >= len(lines) {
				return nil, fmt.Errorf("vm: truncated function %s", f.Name)
			}
			insn, err := parseVMInsn(strings.TrimSpace(lines[i]))
			if err != nil {
				return nil, err
			}
			f.Code = append(f.Code, insn)
			i++
		}
		funcs = append(funcs, f)
	}
	return funcs, nil
}

func parseVMInsn(line string) (VMInsn, error) {
	op, rest, _ := strings.Cut(line, " ")
	switch op {
	case "push", "load", "store", "jmp", "jz":
		n, err := strconv.Atoi(strings.TrimSpace(rest))
		if err != nil {
			return VMInsn{}, fmt.Errorf("vm: bad operand in %q", line)
		}
		return VMInsn{Op: op, N: n}, nil
	case "call":
		name, nargs, _ := strings.Cut(strings.TrimSpace(rest), " ")
		n, err := strconv.Atoi(strings.TrimSpace(nargs))
		if err != nil {
			return VMInsn{}, fmt.Errorf("vm: bad call %q", line)
		}
		return VMInsn{Op: "call", S: name, N: n}, nil
	case "prints":
		s, err := strconv.Unquote(strings.TrimSpace(rest))
		if err != nil {
			return VMInsn{}, fmt.Errorf("vm: bad string in %q", line)
		}
		return VMInsn{Op: "prints", S: s}, nil
	case "add", "sub", "mul", "div", "mod", "neg", "not",
		"eq", "ne", "lt", "le", "gt", "ge", "and", "or",
		"ret", "print", "pop":
		return VMInsn{Op: op}, nil
	}
	return VMInsn{}, fmt.Errorf("vm: unknown instruction %q", line)
}

// VMOutput is where the machine sends program output (io.StringWriter).
type VMOutput interface {
	WriteString(s string) (int, error)
}

// RunVM executes main and returns its value.
func RunVM(funcs []VMFunc, out VMOutput) (int32, error) {
	byName := map[string]*VMFunc{}
	for i := range funcs {
		f := &funcs[i]
		if _, dup := byName[f.Name]; dup {
			return 0, fmt.Errorf("vm: duplicate symbol %s", f.Name)
		}
		byName[f.Name] = f
	}
	main := byName["main"]
	if main == nil {
		return 0, fmt.Errorf("vm: undefined symbol main")
	}
	steps := 0
	var call func(f *VMFunc, args []int32) (int32, error)
	call = func(f *VMFunc, args []int32) (int32, error) {
		locals := make([]int32, f.NLocals)
		copy(locals, args)
		var stack []int32
		pop := func() int32 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			return v
		}
		pc := 0
		for pc < len(f.Code) {
			steps++
			if steps > 100_000_000 {
				return 0, fmt.Errorf("vm: step limit exceeded in %s", f.Name)
			}
			in := f.Code[pc]
			pc++
			switch in.Op {
			case "push":
				stack = append(stack, int32(in.N))
			case "load":
				if in.N >= len(locals) {
					return 0, fmt.Errorf("vm: bad slot %d in %s", in.N, f.Name)
				}
				stack = append(stack, locals[in.N])
			case "store":
				if in.N >= len(locals) {
					return 0, fmt.Errorf("vm: bad slot %d in %s", in.N, f.Name)
				}
				locals[in.N] = pop()
			case "add":
				b, a := pop(), pop()
				stack = append(stack, a+b)
			case "sub":
				b, a := pop(), pop()
				stack = append(stack, a-b)
			case "mul":
				b, a := pop(), pop()
				stack = append(stack, a*b)
			case "div":
				b, a := pop(), pop()
				if b == 0 {
					return 0, fmt.Errorf("vm: division by zero in %s", f.Name)
				}
				stack = append(stack, a/b)
			case "mod":
				b, a := pop(), pop()
				if b == 0 {
					return 0, fmt.Errorf("vm: division by zero in %s", f.Name)
				}
				stack = append(stack, a%b)
			case "neg":
				stack[len(stack)-1] = -stack[len(stack)-1]
			case "not":
				v := pop()
				stack = append(stack, b2i(v == 0))
			case "eq":
				b, a := pop(), pop()
				stack = append(stack, b2i(a == b))
			case "ne":
				b, a := pop(), pop()
				stack = append(stack, b2i(a != b))
			case "lt":
				b, a := pop(), pop()
				stack = append(stack, b2i(a < b))
			case "le":
				b, a := pop(), pop()
				stack = append(stack, b2i(a <= b))
			case "gt":
				b, a := pop(), pop()
				stack = append(stack, b2i(a > b))
			case "ge":
				b, a := pop(), pop()
				stack = append(stack, b2i(a >= b))
			case "and":
				b, a := pop(), pop()
				stack = append(stack, b2i(a != 0 && b != 0))
			case "or":
				b, a := pop(), pop()
				stack = append(stack, b2i(a != 0 || b != 0))
			case "jmp":
				pc = in.N
			case "jz":
				if pop() == 0 {
					pc = in.N
				}
			case "call":
				callee := byName[in.S]
				if callee == nil {
					return 0, fmt.Errorf("vm: undefined symbol %s", in.S)
				}
				args := make([]int32, in.N)
				for i := in.N - 1; i >= 0; i-- {
					args[i] = pop()
				}
				v, err := call(callee, args)
				if err != nil {
					return 0, err
				}
				stack = append(stack, v)
			case "ret":
				return pop(), nil
			case "print":
				out.WriteString(strconv.FormatInt(int64(pop()), 10) + "\n")
			case "prints":
				out.WriteString(in.S)
			case "pop":
				pop()
			default:
				return 0, fmt.Errorf("vm: unknown op %q", in.Op)
			}
		}
		return 0, nil
	}
	return call(main, nil)
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}
