package apps

import (
	"fmt"
	"strings"

	"interpose/internal/libc"
	"interpose/internal/sys"
)

// scribeMain is a document formatter in the style of Scribe: it reads a
// manuscript (.mss) with @-commands and produces a paginated, filled and
// justified document. It is the paper's "format my dissertation" workload
// (Table 3-2): a single process making moderate use of system calls.
//
// Supported commands: @Include(file), @Title(...), @Author(...),
// @Chapter(...), @Section(...), @SubSection(...), @Begin(itemize|
// verbatim|quotation) ... @End(...), @i[text] and @b[text] inline faces,
// and @newpage.
func scribeMain(t *libc.T) int {
	if len(t.Args) < 2 {
		t.Errorf("usage: scribe INPUT.mss [OUTPUT]")
		return 2
	}
	input := t.Args[1]
	output := strings.TrimSuffix(input, ".mss") + ".doc"
	if len(t.Args) > 2 {
		output = t.Args[2]
	}

	doc := &scribeDoc{t: t, width: 72, pageLen: 58}
	if !doc.load(input, 0) {
		return 1
	}
	doc.format()

	out, err := t.Fopen(output, "w")
	if err != sys.OK {
		t.Errorf("%s: %v", output, err)
		return 1
	}
	for _, line := range doc.out {
		out.WriteString(line)
		out.WriteString("\n")
	}
	if e := out.Close(); e != sys.OK {
		t.Errorf("%s: %v", output, e)
		return 1
	}
	t.Printf("scribe: %s: %d pages, %d lines\n", output, doc.page, len(doc.out))
	return 0
}

// scribeDoc is the document being built.
type scribeDoc struct {
	t       *libc.T
	width   int
	pageLen int

	title  string
	author string

	// Source blocks after include expansion.
	blocks []scribeBlock

	// Numbering state.
	chapter, section, subsection int
	toc                          []string

	// Output state.
	out      []string
	pageLine int
	page     int
}

type scribeBlock struct {
	kind string // "para", "chapter", "section", "subsection", "item",
	// "verbatim", "quote", "newpage"
	text  string
	lines []string // verbatim only
}

// load reads and parses a manuscript file, expanding includes.
func (d *scribeDoc) load(path string, depth int) bool {
	if depth > 8 {
		d.t.Errorf("%s: includes nested too deeply", path)
		return false
	}
	f, err := d.t.Fopen(path, "r")
	if err != sys.OK {
		d.t.Errorf("%s: %v", path, err)
		return false
	}
	defer f.Close()

	var para []string
	env := "" // current @Begin environment
	flush := func() {
		if len(para) == 0 {
			return
		}
		text := strings.Join(para, " ")
		para = nil
		kind := "para"
		switch env {
		case "itemize":
			kind = "item"
		case "quotation":
			kind = "quote"
		}
		d.blocks = append(d.blocks, scribeBlock{kind: kind, text: text})
	}

	for {
		line, ok := f.ReadLine()
		if !ok {
			break
		}
		trimmed := strings.TrimSpace(line)
		if env == "verbatim" {
			if strings.HasPrefix(trimmed, "@End(verbatim)") {
				env = ""
				continue
			}
			n := len(d.blocks)
			if n == 0 || d.blocks[n-1].kind != "verbatim" {
				d.blocks = append(d.blocks, scribeBlock{kind: "verbatim"})
				n++
			}
			d.blocks[n-1].lines = append(d.blocks[n-1].lines, line)
			continue
		}
		if trimmed == "" {
			flush()
			continue
		}
		if strings.HasPrefix(trimmed, "@") {
			cmd, arg := scribeCommand(trimmed)
			switch strings.ToLower(cmd) {
			case "include":
				flush()
				inc := arg
				if !strings.HasPrefix(inc, "/") {
					inc = libc.JoinPath(libc.Dirname(path), inc)
				}
				if !d.load(inc, depth+1) {
					return false
				}
			case "title":
				d.title = arg
			case "author":
				d.author = arg
			case "chapter":
				flush()
				d.blocks = append(d.blocks, scribeBlock{kind: "chapter", text: arg})
			case "section":
				flush()
				d.blocks = append(d.blocks, scribeBlock{kind: "section", text: arg})
			case "subsection":
				flush()
				d.blocks = append(d.blocks, scribeBlock{kind: "subsection", text: arg})
			case "begin":
				flush()
				env = strings.ToLower(arg)
			case "end":
				flush()
				env = ""
			case "newpage":
				flush()
				d.blocks = append(d.blocks, scribeBlock{kind: "newpage"})
			case "device", "style", "make", "libraryfile", "pageheading":
				// Layout hints this formatter does not need.
			default:
				// Unknown command: treat as text so nothing is lost.
				para = append(para, trimmed)
			}
			continue
		}
		para = append(para, trimmed)
	}
	flush()
	return true
}

// scribeCommand splits "@Cmd(arg)" or "@Cmd[arg]".
func scribeCommand(s string) (cmd, arg string) {
	s = s[1:]
	for i := 0; i < len(s); i++ {
		if s[i] == '(' || s[i] == '[' {
			close := byte(')')
			if s[i] == '[' {
				close = ']'
			}
			end := strings.IndexByte(s[i:], close)
			if end < 0 {
				return s[:i], s[i+1:]
			}
			return s[:i], s[i+1 : i+end]
		}
	}
	return s, ""
}

// format lays the document out into pages.
func (d *scribeDoc) format() {
	d.page = 1
	d.emitTitlePage()
	for _, b := range d.blocks {
		switch b.kind {
		case "chapter":
			d.chapter++
			d.section, d.subsection = 0, 0
			head := fmt.Sprintf("Chapter %d.  %s", d.chapter, scribeFaces(b.text))
			d.toc = append(d.toc, fmt.Sprintf("%-60s %5d", head, d.page+1))
			d.newPage()
			d.emit("")
			d.emit(head)
			d.emit(strings.Repeat("=", min(len(head), d.width)))
			d.emit("")
		case "section":
			d.section++
			d.subsection = 0
			head := fmt.Sprintf("%d.%d  %s", d.chapter, d.section, scribeFaces(b.text))
			d.toc = append(d.toc, fmt.Sprintf("  %-58s %5d", head, d.page))
			d.need(4)
			d.emit("")
			d.emit(head)
			d.emit(strings.Repeat("-", min(len(head), d.width)))
		case "subsection":
			d.subsection++
			head := fmt.Sprintf("%d.%d.%d  %s", d.chapter, d.section, d.subsection, scribeFaces(b.text))
			d.toc = append(d.toc, fmt.Sprintf("    %-56s %5d", head, d.page))
			d.need(3)
			d.emit("")
			d.emit(head)
		case "para":
			d.emit("")
			d.fill(scribeFaces(b.text), "    ", "", true)
		case "item":
			d.emit("")
			d.fill(scribeFaces(b.text), "  - ", "    ", false)
		case "quote":
			d.emit("")
			d.fill(scribeFaces(b.text), "        ", "        ", false)
		case "verbatim":
			d.emit("")
			for _, l := range b.lines {
				d.emit("    " + l)
			}
		case "newpage":
			d.newPage()
		}
	}
	d.emitTOC()
}

// emitTitlePage writes the front matter.
func (d *scribeDoc) emitTitlePage() {
	d.emit("")
	d.emit("")
	if d.title != "" {
		d.emit(center(strings.ToUpper(d.title), d.width))
	}
	d.emit("")
	if d.author != "" {
		d.emit(center(d.author, d.width))
	}
	d.emit("")
}

// emitTOC appends the table of contents (Scribe put it up front by
// rerunning; one pass puts it at the end, where its page numbers are
// already known).
func (d *scribeDoc) emitTOC() {
	d.newPage()
	d.emit("")
	d.emit("Table of Contents")
	d.emit("-----------------")
	for _, e := range d.toc {
		d.emit(e)
	}
}

// emit writes one output line, breaking pages.
func (d *scribeDoc) emit(line string) {
	if d.pageLine >= d.pageLen {
		d.pageBreak()
	}
	d.out = append(d.out, line)
	d.pageLine++
}

// pageBreak ends the current page with a numbered footer.
func (d *scribeDoc) pageBreak() {
	for d.pageLine < d.pageLen {
		d.out = append(d.out, "")
		d.pageLine++
	}
	d.out = append(d.out, center(fmt.Sprintf("- %d -", d.page), d.width))
	d.out = append(d.out, "\f")
	d.page++
	d.pageLine = 0
}

// newPage forces a page break unless at the top of a fresh page.
func (d *scribeDoc) newPage() {
	if d.pageLine > 0 {
		d.pageBreak()
	}
}

// need breaks the page early if fewer than n lines remain (widow/orphan
// control for headings).
func (d *scribeDoc) need(n int) {
	if d.pageLen-d.pageLine < n {
		d.pageBreak()
	}
}

// fill breaks text into lines of at most width columns, justifying full
// lines when justify is set.
func (d *scribeDoc) fill(text, firstIndent, restIndent string, justify bool) {
	words := strings.Fields(text)
	indent := firstIndent
	for len(words) > 0 {
		avail := d.width - len(indent)
		n, length := 0, 0
		for n < len(words) {
			wlen := len(words[n])
			if n > 0 {
				wlen++
			}
			if length+wlen > avail {
				break
			}
			length += wlen
			n++
		}
		if n == 0 {
			n = 1 // an overlong word gets its own line
		}
		line := words[:n]
		words = words[n:]
		full := len(words) > 0
		if justify && full && n > 1 {
			d.emit(indent + justifyLine(line, avail))
		} else {
			d.emit(indent + strings.Join(line, " "))
		}
		indent = restIndent
	}
}

// justifyLine pads inter-word gaps so the line spans width columns.
func justifyLine(words []string, width int) string {
	chars := 0
	for _, w := range words {
		chars += len(w)
	}
	gaps := len(words) - 1
	pad := width - chars
	if pad < gaps {
		pad = gaps
	}
	var b strings.Builder
	for i, w := range words {
		b.WriteString(w)
		if i < gaps {
			this := pad / gaps
			if i < pad%gaps {
				this++
			}
			b.WriteString(strings.Repeat(" ", this))
		}
	}
	return b.String()
}

// scribeFaces renders @i[...] and @b[...] inline faces.
func scribeFaces(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '@' && i+2 < len(s) && s[i+2] == '[' {
			end := strings.IndexByte(s[i+3:], ']')
			if end >= 0 {
				inner := s[i+3 : i+3+end]
				switch s[i+1] {
				case 'i':
					b.WriteString("_" + inner + "_")
				case 'b':
					b.WriteString(strings.ToUpper(inner))
				default:
					b.WriteString(inner)
				}
				i += 3 + end
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func center(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return strings.Repeat(" ", (width-len(s))/2) + s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
