package apps

import (
	"fmt"
	"math/rand"
	"strings"

	"interpose/internal/kernel"
)

// The two evaluation workloads of the paper's §3.4, generated
// deterministically into a kernel's filesystem.

// loremWords supplies filler prose for the dissertation manuscript.
var loremWords = strings.Fields(`
interposition agents transparently interpose user code at the system
interface many contemporary operating systems utilize a system call
interface between the operating system and its clients increasing numbers
of systems provide low level mechanisms for intercepting and handling
system calls in user code nonetheless they typically provide no higher
level tools or abstractions for effectively utilizing these mechanisms
using them has typically required reimplementation of a substantial
portion of the system interface from scratch making the use of such
facilities unwieldy at best this dissertation presents a toolkit that
substantially increases the ease of interposing user code between clients
and instances of the system interface by allowing such code to be written
in terms of the high level objects provided by this interface rather than
in terms of the intercepted system calls themselves`)

// GenDissertation writes a multi-chapter Scribe manuscript (the paper's
// "format my dissertation" input) under dir, returning the main file.
// Size is roughly chapters × sectionsPerChapter × parasPerSection × 60
// words.
func GenDissertation(k *kernel.Kernel, dir string, chapters, sectionsPerChapter, parasPerSection int) (string, error) {
	if err := k.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	rng := rand.New(rand.NewSource(1993))
	para := func() string {
		n := 40 + rng.Intn(40)
		words := make([]string, n)
		for i := range words {
			words[i] = loremWords[rng.Intn(len(loremWords))]
		}
		// Sprinkle some inline faces for the formatter to chew on.
		if rng.Intn(3) == 0 {
			words[rng.Intn(n)] = "@i[" + words[rng.Intn(n)] + "]"
		}
		if rng.Intn(4) == 0 {
			words[rng.Intn(n)] = "@b[" + words[rng.Intn(n)] + "]"
		}
		return wrap(strings.Join(words, " "), 70)
	}

	var main strings.Builder
	main.WriteString("@Device(file)\n@Make(report)\n")
	main.WriteString("@Title(Transparently Interposing User Code at the System Interface)\n")
	main.WriteString("@Author(A Graduate Student)\n\n")
	for ch := 1; ch <= chapters; ch++ {
		name := fmt.Sprintf("chapter%02d.mss", ch)
		var b strings.Builder
		fmt.Fprintf(&b, "@Chapter(Chapter Title Number %d)\n\n", ch)
		for s := 1; s <= sectionsPerChapter; s++ {
			fmt.Fprintf(&b, "@Section(Section %d of Chapter %d)\n\n", s, ch)
			for p := 0; p < parasPerSection; p++ {
				b.WriteString(para())
				b.WriteString("\n\n")
			}
			if s%2 == 0 {
				b.WriteString("@Begin(itemize)\n")
				for i := 0; i < 3; i++ {
					b.WriteString(para())
					b.WriteString("\n\n")
				}
				b.WriteString("@End(itemize)\n\n")
			}
			if s%3 == 0 {
				b.WriteString("@Begin(verbatim)\n")
				b.WriteString("    class numeric_syscall {\n        virtual int syscall(int number);\n    };\n")
				b.WriteString("@End(verbatim)\n\n")
			}
		}
		if err := k.WriteFile(dir+"/"+name, []byte(b.String()), 0o644); err != nil {
			return "", err
		}
		fmt.Fprintf(&main, "@Include(%s)\n", name)
	}
	path := dir + "/dissertation.mss"
	if err := k.WriteFile(path, []byte(main.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

func wrap(s string, width int) string {
	words := strings.Fields(s)
	var b strings.Builder
	col := 0
	for _, w := range words {
		if col > 0 && col+1+len(w) > width {
			b.WriteString("\n")
			col = 0
		} else if col > 0 {
			b.WriteString(" ")
			col++
		}
		b.WriteString(w)
		col += len(w)
	}
	return b.String()
}

// GenMakeTree writes the "make N programs" workload under dir: a Makefile
// and, for each program, two MiniC sources plus a shared header — so one
// full build runs cc once per program and cpp/cc1/as twice plus ld once
// inside each, reproducing the paper's 64 fork/exec pairs at N=8.
func GenMakeTree(k *kernel.Kernel, dir string, programs int) error {
	if err := k.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	header := "#define LIMIT 10\n#define STEP 1\n"
	if err := k.WriteFile(dir+"/defs.h", []byte(header), 0o644); err != nil {
		return err
	}

	var mk strings.Builder
	mk.WriteString("CC = cc\n\n")
	var all []string
	for i := 1; i <= programs; i++ {
		all = append(all, fmt.Sprintf("prog%d", i))
	}
	mk.WriteString("all: " + strings.Join(all, " ") + "\n\n")

	for i := 1; i <= programs; i++ {
		mainSrc := fmt.Sprintf(`#include "defs.h"
// program %d main unit
helper(n)
{
    int acc = 0;
    int i = 0;
    while (i < n) {
        acc = acc + compute(i);
        i = i + STEP;
    }
    return acc;
}

main()
{
    prints("prog%d: ");
    print(helper(LIMIT) + %d);
    return 0;
}
`, i, i, i)
		subSrc := fmt.Sprintf(`#include "defs.h"
// program %d support unit
compute(x)
{
    if (x %% 2 == 0) {
        return x * x;
    } else {
        return x + %d;
    }
}
`, i, i)
		if err := k.WriteFile(fmt.Sprintf("%s/prog%d_main.c", dir, i), []byte(mainSrc), 0o644); err != nil {
			return err
		}
		if err := k.WriteFile(fmt.Sprintf("%s/prog%d_sub.c", dir, i), []byte(subSrc), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(&mk, "prog%d: prog%d_main.c prog%d_sub.c defs.h\n", i, i, i)
		fmt.Fprintf(&mk, "\t$(CC) -o prog%d prog%d_main.c prog%d_sub.c\n\n", i, i, i)
	}
	return k.WriteFile(dir+"/Makefile", []byte(mk.String()), 0o644)
}

// ExpectedProgOutput returns what the workload's prog<i> prints when run,
// for verifying builds end to end.
func ExpectedProgOutput(i int) string {
	// helper(10) with compute: even x → x², odd x → x+i.
	acc := 0
	for x := 0; x < 10; x++ {
		if x%2 == 0 {
			acc += x * x
		} else {
			acc += x + i
		}
	}
	return fmt.Sprintf("prog%d: %d\n", i, acc+i)
}
