// Supervisor microbenchmarks: the cost of agent supervision at each
// point of the dispatch path. The off-path rows (Off, Idle) are the
// pay-per-use contract — installing a supervisor must not slow calls
// that no layer intercepts — and the idle number is what the perf-smoke
// gate folds into its guarded rows (sup:getpid()/idle in
// BENCH_BASELINE.json). Containment measures the full recover path of a
// panicking layer, the worst case a buggy agent can inflict per call.
//
//	go test -bench 'Supervisor' .
package interpose_test

import (
	"testing"

	"interpose/internal/kernel"
	"interpose/internal/sys"
)

// benchProc makes a host-driven process, optionally under a supervised
// or unsupervised pass-through layer.
func benchProc(b *testing.B, layer sys.Handler, cfg *kernel.SupervisorConfig) *kernel.Proc {
	b.Helper()
	k := mustWorld(b)
	p := k.NewProc()
	if err := p.OpenConsole(); err != nil {
		b.Fatal(err)
	}
	if layer != nil {
		l := kernel.NewEmuLayer(layer)
		l.Name = "bench"
		l.RegisterAll()
		p.PushEmulation(l)
	}
	if cfg != nil {
		k.SetSupervisor(kernel.NewSupervisor(k, *cfg))
	}
	return p
}

type benchDowner interface {
	Down(num int, a sys.Args) (sys.Retval, sys.Errno)
}

// benchPassThrough forwards every call to the next-lower instance.
type benchPassThrough struct{}

func (benchPassThrough) Syscall(c sys.Ctx, num int, a sys.Args) (sys.Retval, sys.Errno) {
	return c.(benchDowner).Down(num, a)
}

// benchPanics fails every upcall the way a buggy agent does.
type benchPanics struct{}

func (benchPanics) Syscall(c sys.Ctx, num int, a sys.Args) (sys.Retval, sys.Errno) {
	panic("bench: injected agent bug")
}

// BenchmarkSupervisor_Off is the floor: uninterposed dispatch, no
// supervisor installed.
func BenchmarkSupervisor_Off(b *testing.B) {
	p := benchProc(b, nil, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Syscall(sys.SYS_getpid, sys.Args{})
	}
}

// BenchmarkSupervisor_Idle is the same uninterposed call with a
// supervisor installed: the off-path number the perf gate guards. It
// must match BenchmarkSupervisor_Off.
func BenchmarkSupervisor_Idle(b *testing.B) {
	p := benchProc(b, nil, &kernel.SupervisorConfig{Mode: kernel.SuperviseStrict})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Syscall(sys.SYS_getpid, sys.Args{})
	}
}

// BenchmarkSupervisor_Layer is the interposed call without supervision:
// the baseline the strict row is compared against.
func BenchmarkSupervisor_Layer(b *testing.B) {
	p := benchProc(b, benchPassThrough{}, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Syscall(sys.SYS_getpid, sys.Args{})
	}
}

// BenchmarkSupervisor_Strict is the supervised interposed call: breaker
// lookup plus the contained upcall.
func BenchmarkSupervisor_Strict(b *testing.B) {
	p := benchProc(b, benchPassThrough{}, &kernel.SupervisorConfig{Mode: kernel.SuperviseStrict})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Syscall(sys.SYS_getpid, sys.Args{})
	}
}

// BenchmarkSupervisor_Containment measures a contained panic per call —
// recover, stack capture, breaker accounting — with a threshold high
// enough that the breaker never trips.
func BenchmarkSupervisor_Containment(b *testing.B) {
	p := benchProc(b, benchPanics{}, &kernel.SupervisorConfig{
		Mode:          kernel.SuperviseStrict,
		TripThreshold: 1 << 30,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Syscall(sys.SYS_getpid, sys.Args{})
	}
}
