// Command agentrun is the general agent loader: it boots the simulated
// system, installs the requested interposition agents, and runs a program
// under them, mirroring the paper's agent loader.
//
//	agentrun [-a agent[=arg]]... [-feed text] [-trace-kernel]
//	         [-inject plan] [-stats] [-stats-json] [-flight-dump]
//	         [-supervise strict|bypass] [-agent-deadline dur]
//	         [-supervise-errno NAME] [-trace-out file]
//	         [-trace-sample p] [-trace-slow dur]
//	         [-journal file] [-checkpoint file] [-restore file]
//	         -- PROGRAM [args...]
//
// Examples:
//
//	agentrun -a trace -- /bin/echo hello
//	agentrun -a timex=86400 -- /bin/date
//	agentrun -a 'union=/u=/srcdir:/objdir' -- /bin/ls /u
//	agentrun -a sandbox=/tmp:emulate -- /bin/sh -c 'rm /etc/passwd'
//	agentrun -a trace -a timex=60 -- /bin/date   # stacked agents
//	agentrun -a 'faulty=seed=7,write=EIO@0.05' -a zip=/z -- /bin/prog
//	agentrun -inject 'seed=7,open=ENOSPC@0.01' -- /bin/sh -c 'mk all'
//	agentrun -supervise strict -a 'faulty=seed=7,write=panic@0.01' -- /bin/sh -c 'cd /src; mk all'
//
// The flags are a command-line syntax for a world.Spec: agentrun parses
// them into the declarative spec, hands it to the world lifecycle layer
// (internal/world) — which owns boot, journal replay, fsck gating,
// facility attachment, and teardown for every loader in the repository —
// and runs one session. The multi-tenant daemon (cmd/worldd) accepts the
// same spec as JSON.
//
// -inject installs the same deterministic fault plan the faulty agent
// uses, but as a kernel-side hook below every agent; the end-of-run
// injection summary lands on standard error either way.
//
// Agents listed first are installed closest to the kernel. The program's
// console output is echoed to standard output; each agent's end-of-run
// report (monitor counts, dfstrace records, sandbox violations, txn
// change lists) follows on standard error.
//
// Telemetry is always on: guests can read live counters from
// /dev/metrics, and -stats / -stats-json print the host-side snapshot
// (per-syscall latency histograms, per-layer time attribution) on
// standard error after the run. -flight-dump prints the flight-recorder
// ring of recent events; if the program dies on a signal the ring is
// dumped automatically, like a crash recorder should.
//
// -supervise installs the kernel's agent supervisor: a panicking (or,
// with -agent-deadline, hanging) agent upcall is contained instead of
// crashing the world — the call fails with -supervise-errno (strict) or
// completes below the failed layer (bypass) — and repeated failures
// quarantine the layer, which is announced on standard error along with
// a flight-ring dump whose supervise:* events carry the layer name.
// Breaker state appears as supervise.layer.* gauges in -stats.
//
// -trace-out installs the causal span tracer and writes the collected
// spans as Chrome trace-event JSON, loadable in Perfetto
// (https://ui.perfetto.dev) — per-syscall spans nested per layer, with
// fork/exec/pipe/signal/wait arrows connecting processes:
//
//	agentrun -trace-out make.json -- /bin/sh -c 'cd /src; mk -j 4 all'
//
// -trace-sample sets the head-sampling probability (default 1.0 when
// -trace-out is given); -trace-slow additionally retains unsampled calls
// at least that slow. Guests can read the same JSON from /dev/trace and
// retune sampling by writing "sample P" or "clear" to it.
//
// -journal attaches a write-ahead journal backed by a host file: every
// filesystem mutation is logged before it is applied, so an injected
// crash (-inject '...write=crash@p' or torn:N) leaves a replayable
// record of everything that was durable. -checkpoint writes the final
// world to a file after a clean run; -restore boots from such a file
// instead of a fresh world. Combining -restore with -journal first
// replays the journal's surviving suffix on top of the checkpoint
// (discarding a torn tail), then continues journaling to the same file:
//
//	agentrun -journal w.jnl -inject 'seed=7,write=torn:16@0.001' -- /bin/sh -c 'cd /src; mk all'
//	agentrun -journal w.jnl -restore w.ckpt -- /bin/ls /src   # recover, then keep going
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"interpose/internal/agents"
	"interpose/internal/apps"
	"interpose/internal/kernel"
	"interpose/internal/sys"
	"interpose/internal/telemetry"
	"interpose/internal/trace"
	"interpose/internal/world"
)

// agentList collects repeated -a flags.
type agentList []string

func (a *agentList) String() string { return strings.Join(*a, ",") }
func (a *agentList) Set(s string) error {
	*a = append(*a, s)
	return nil
}

func main() {
	var specs agentList
	flag.Var(&specs, "a", "agent specification (repeatable); see -list")
	list := flag.Bool("list", false, "list available agents and programs")
	feed := flag.String("feed", "", "text to feed to the console (standard input)")
	stats := flag.Bool("stats", false, "print the telemetry snapshot (text) on standard error")
	statsJSON := flag.Bool("stats-json", false, "print the telemetry snapshot as JSON on standard error")
	flightDump := flag.Bool("flight-dump", false, "print the flight-recorder ring on standard error")
	traceKernel := flag.Bool("trace-kernel", false, "print kernel-level file-reference trace events on standard error")
	inject := flag.String("inject", "", "kernel-side fault plan, injected below all agents (e.g. 'seed=7,write=EIO@0.05')")
	supervise := flag.String("supervise", "off", "contain agent failures: strict (failed call errors), bypass (failed call completes below the layer), or off")
	agentDeadline := flag.Duration("agent-deadline", 0, "abandon an agent upcall running longer than this (0 disables; needs -supervise)")
	superviseErrno := flag.String("supervise-errno", "EFAULT", "errno a contained agent failure returns in strict mode")
	traceOut := flag.String("trace-out", "", "write causal span trace as Chrome trace-event JSON to this file (load in Perfetto)")
	traceSample := flag.Float64("trace-sample", -1, "span head-sampling probability in [0,1]; default 1 with -trace-out, else tracing off")
	traceSlow := flag.Duration("trace-slow", 0, "also retain unsampled calls at least this slow (tail sampling; 0 disables)")
	journalPath := flag.String("journal", "", "attach a write-ahead journal backed by this host file (with -restore: replay it first, then append)")
	poolSize := flag.Int("pool", 0, "acquire the session world from a warm pool of this many pre-forked clones (pool gauges show up in -stats)")
	checkpointPath := flag.String("checkpoint", "", "write a checkpoint of the final world to this file after a clean run")
	restorePath := flag.String("restore", "", "boot from this checkpoint file instead of a fresh world")
	flag.Parse()

	if *list {
		fmt.Println("agents:")
		for _, n := range agents.Names() {
			fmt.Println("  " + n)
		}
		fmt.Println("programs (in /bin):")
		for _, n := range apps.Names() {
			fmt.Println("  " + n)
		}
		return
	}

	argv := flag.Args()
	if len(argv) == 0 {
		fmt.Fprintln(os.Stderr, "usage: agentrun [-a agent[=arg]]... -- PROGRAM [args...]")
		os.Exit(2)
	}
	// Pool members are anonymous COW clones of one template; a journal
	// names one world's durable history and a checkpoint restores one
	// world's state. Neither identity can be shared by a pool, so say so
	// up front instead of letting the pool constructor refuse later.
	if *poolSize > 0 && (*journalPath != "" || *restorePath != "") {
		fmt.Fprintln(os.Stderr, "agentrun: -pool cannot be combined with -journal or -restore (pooled worlds are anonymous clones; journals and checkpoints name a single world)")
		os.Exit(2)
	}

	// The flags are a world.Spec in command-line clothing. The lifecycle
	// layer owns the sequencing (restore vs fresh boot, journal replay
	// with torn-tail cutting, the post-recovery fsck gate, injector
	// crash hooks freezing the store); this program is a pure parser
	// plus end-of-run reporting.
	spec := apps.Spec()
	spec.Name = "agentrun"
	spec.Agents = specs
	spec.RestorePath = *restorePath
	spec.JournalPath = *journalPath
	spec.Inject = *inject
	spec.Telemetry = true
	spec.Mirror = os.Stdout
	if *traceOut != "" || *traceSample >= 0 || *traceSlow > 0 {
		sample := *traceSample
		if sample < 0 {
			sample = 1 // -trace-out alone means "trace everything"
		}
		spec.Trace = &world.TraceSpec{
			Sample:     sample,
			Slow:       *traceSlow,
			TailErrors: *traceSlow > 0 || sample < 1,
		}
	}
	if *supervise != "off" || *agentDeadline != 0 {
		spec.Supervise = &world.SuperviseSpec{
			Mode:     *supervise,
			Errno:    *superviseErrno,
			Deadline: *agentDeadline,
		}
	}
	// A quarantine is the crash-recorder moment for an agent: say which
	// layer was fenced off and dump the recent-event ring, whose
	// supervise:* events carry the layer name.
	var w *world.World
	spec.OnQuarantine = func(layer string, stack []byte) {
		fmt.Fprintf(os.Stderr, "agentrun: layer %q quarantined after repeated failures\n", layer)
		if w != nil && w.Telemetry() != nil {
			w.Telemetry().Snapshot().WriteFlight(os.Stderr)
		}
	}

	// -pool N takes the session world from a warm pool instead of
	// booting it: the same spec, but the handout is a pool hit (or an
	// inline COW fork on a miss) and the pool's hit/miss/size/refill
	// gauges land in the -stats counters. agentrun runs one session, so
	// the leftover warm clones are torn down as soon as one is taken.
	var err error
	if *poolSize > 0 {
		pool, perr := world.NewPool(spec, *poolSize)
		if perr != nil {
			fatal(perr)
		}
		w, err = pool.Acquire()
		if cerr := pool.Close(); err == nil && cerr != nil {
			err = cerr
		}
	} else {
		w, err = world.Boot(spec)
	}
	if err != nil {
		fatal(err)
	}
	if w.Torn != nil {
		fmt.Fprintln(os.Stderr, "agentrun:", w.Torn.Error())
	}
	if w.Replayed() > 0 {
		fmt.Fprintf(os.Stderr, "agentrun: journal: replayed %d records (%d already checkpointed)\n",
			w.Applied, w.Skipped)
	}
	if *traceKernel {
		w.Kernel().SetTracer(stderrTracer{})
	}

	res, err := w.Exec(world.ExecRequest{Argv: argv, Feed: *feed})
	if err != nil {
		fatal(err)
	}

	w.FinishReports(os.Stderr)
	if inj := w.Injector(); inj != nil {
		fmt.Fprint(os.Stderr, inj.Summary())
	}

	if jw := w.Kernel().Journal(); jw != nil && !w.Crashed() {
		// Final group-commit barrier: a clean exit leaves a complete
		// journal file. (A crashed world's store is frozen as-is.)
		if err := jw.Commit(); err != nil {
			fmt.Fprintln(os.Stderr, "agentrun: journal:", err)
		}
	}
	if *checkpointPath != "" {
		if w.Crashed() {
			fmt.Fprintln(os.Stderr, "agentrun: world crashed; no checkpoint written (recover from the journal)")
		} else {
			f, err := os.Create(*checkpointPath)
			if err != nil {
				fatal(err)
			}
			werr := w.Checkpoint(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fatal(werr)
			}
			fmt.Fprintf(os.Stderr, "agentrun: checkpoint written to %s\n", *checkpointPath)
		}
	}

	if w.Tracer() != nil && *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		werr := w.Tracer().WriteChrome(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fatal(werr)
		}
		spans, dropped := w.Tracer().Stats()
		fmt.Fprintf(os.Stderr, "agentrun: wrote %d spans to %s (%d dropped)\n", spans-dropped, *traceOut, dropped)
	}

	snap := w.Telemetry().Snapshot()
	if *stats {
		snap.WriteText(os.Stderr)
	}
	if *statsJSON {
		if err := snap.WriteJSON(os.Stderr); err != nil {
			fatal(err)
		}
	}

	if !res.Exited() {
		fmt.Fprintf(os.Stderr, "agentrun: %s killed by %s\n", argv[0], res.Signal)
		// A crash recorder's whole point: dump the recent-event ring when
		// the program dies abnormally, whether or not it was asked for —
		// and persist it (plus the span trace) to $ARTIFACT_DIR so CI
		// keeps the forensics even though stderr scrolls away.
		snap.WriteFlight(os.Stderr)
		writeDeathArtifacts(snap, w.Tracer())
		os.Exit(res.Status)
	}
	if *flightDump {
		snap.WriteFlight(os.Stderr)
	}
	os.Exit(res.Status)
}

// writeDeathArtifacts writes the flight ring and span trace as files in
// $ARTIFACT_DIR when the program dies on a signal. An injected crash is
// an expected death, so a soak harness exits nonzero here without any
// test framework marking failure — the artifacts must not depend on one.
func writeDeathArtifacts(snap telemetry.Snapshot, tr *trace.Tracer) {
	dir := os.Getenv("ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "agentrun: artifacts:", err)
		return
	}
	name := fmt.Sprintf("agentrun-%d", os.Getpid())
	var flight bytes.Buffer
	snap.WriteFlight(&flight)
	if err := os.WriteFile(filepath.Join(dir, name+"-flight.txt"), flight.Bytes(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "agentrun: artifacts:", err)
	}
	if tr != nil {
		var spans bytes.Buffer
		if tr.WriteChrome(&spans) == nil {
			if err := os.WriteFile(filepath.Join(dir, name+"-trace.json"), spans.Bytes(), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "agentrun: artifacts:", err)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "agentrun: wrote death artifacts %s-* in %s\n", name, dir)
}

// stderrTracer prints kernel file-reference trace events, one per line.
type stderrTracer struct{}

func (stderrTracer) Event(e kernel.TraceEvent) {
	line := fmt.Sprintf("ktrace: pid %d %s", e.PID, e.Op)
	if e.Path != "" {
		line += " " + e.Path
	}
	if e.Path2 != "" {
		line += " -> " + e.Path2
	}
	if e.FD >= 0 && e.Path == "" {
		line += fmt.Sprintf(" fd=%d", e.FD)
	}
	if e.Err != sys.OK {
		line += " [" + e.Err.Error() + "]"
	}
	fmt.Fprintln(os.Stderr, line)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "agentrun:", err)
	os.Exit(1)
}
