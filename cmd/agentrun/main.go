// Command agentrun is the general agent loader: it boots the simulated
// system, installs the requested interposition agents, and runs a program
// under them, mirroring the paper's agent loader.
//
//	agentrun [-a agent[=arg]]... [-feed text] [-trace-kernel] -- PROGRAM [args...]
//
// Examples:
//
//	agentrun -a trace -- /bin/echo hello
//	agentrun -a timex=86400 -- /bin/date
//	agentrun -a 'union=/u=/srcdir:/objdir' -- /bin/ls /u
//	agentrun -a sandbox=/tmp:emulate -- /bin/sh -c 'rm /etc/passwd'
//	agentrun -a trace -a timex=60 -- /bin/date   # stacked agents
//
// Agents listed first are installed closest to the kernel. The program's
// console output is echoed to standard output; each agent's end-of-run
// report (monitor counts, dfstrace records, sandbox violations, txn
// change lists) follows on standard error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"interpose/internal/agents"
	"interpose/internal/apps"
	"interpose/internal/core"
	"interpose/internal/sys"
)

// agentList collects repeated -a flags.
type agentList []string

func (a *agentList) String() string { return strings.Join(*a, ",") }
func (a *agentList) Set(s string) error {
	*a = append(*a, s)
	return nil
}

func main() {
	var specs agentList
	flag.Var(&specs, "a", "agent specification (repeatable); see -list")
	list := flag.Bool("list", false, "list available agents and programs")
	feed := flag.String("feed", "", "text to feed to the console (standard input)")
	flag.Parse()

	if *list {
		fmt.Println("agents:")
		for _, n := range agents.Names() {
			fmt.Println("  " + n)
		}
		fmt.Println("programs (in /bin):")
		for _, n := range apps.Names() {
			fmt.Println("  " + n)
		}
		return
	}

	argv := flag.Args()
	if len(argv) == 0 {
		fmt.Fprintln(os.Stderr, "usage: agentrun [-a agent[=arg]]... -- PROGRAM [args...]")
		os.Exit(2)
	}

	k, err := apps.NewWorld()
	if err != nil {
		fatal(err)
	}
	if *feed != "" {
		k.Console().Feed(*feed)
	}
	k.Console().FeedEOF()
	k.Console().Mirror(os.Stdout)

	var stack []core.Agent
	var instances []*agents.Instance
	for _, spec := range specs {
		inst, err := agents.New(spec)
		if err != nil {
			fatal(err)
		}
		stack = append(stack, inst.Agent)
		instances = append(instances, inst)
	}

	path := argv[0]
	if !strings.HasPrefix(path, "/") {
		path = "/bin/" + path
	}
	p, err := core.Launch(k, stack, path, argv, []string{"PATH=/bin:/usr/bin"})
	if err != nil {
		fatal(err)
	}
	status := k.WaitExit(p)

	for _, inst := range instances {
		if inst.Finish != nil {
			inst.Finish(os.Stderr)
		}
	}

	if !sys.WIfExited(status) {
		fmt.Fprintf(os.Stderr, "agentrun: %s killed by %s\n", argv[0], sys.SignalName(sys.WTermSig(status)))
		os.Exit(128 + sys.WTermSig(status))
	}
	os.Exit(sys.WExitStatus(status))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "agentrun:", err)
	os.Exit(1)
}
