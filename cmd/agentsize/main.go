// Command agentsize regenerates the paper's Table 3-1: the source sizes
// of agents split into toolkit code used versus agent-specific code,
// measured in statements (the Go analog of the paper's semicolon count).
//
//	agentsize            # the paper's table (timex, trace, union)
//	agentsize DIR...     # statement counts for arbitrary package dirs
package main

import (
	"fmt"
	"os"

	"interpose/internal/experiments"
)

func main() {
	if len(os.Args) > 1 {
		for _, dir := range os.Args[1:] {
			n, err := experiments.CountDir(dir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "agentsize:", err)
				os.Exit(1)
			}
			fmt.Printf("%8d %s\n", n, dir)
		}
		return
	}
	rows, err := experiments.RunTable31()
	if err != nil {
		fmt.Fprintln(os.Stderr, "agentsize:", err)
		os.Exit(1)
	}
	experiments.PrintTable31(os.Stdout, rows)

	kStmts, aStmts, err := experiments.DFSTraceSizes()
	if err != nil {
		fmt.Fprintln(os.Stderr, "agentsize:", err)
		os.Exit(1)
	}
	fmt.Printf("DFSTrace implementations: kernel-based %d statements, agent-based %d statements\n",
		kStmts, aStmts)
}
