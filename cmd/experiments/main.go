// Command experiments regenerates every table of the paper's evaluation
// section against this reproduction:
//
//	experiments              # all tables
//	experiments -table 3-2   # one table (3-1, 3-2, 3-3, 3-4, 3-5, dfs, scale, obs, sup, trace, crash, worldd, pool, resil)
//	experiments -runs 9      # timed repetitions per row (paper used 9)
//	experiments -json        # also write BENCH_<date>.json (per-table ns/op)
//
// The obs table is this reproduction's observability addition: the make
// workload under the trace agent with telemetry enabled, printing where
// the time went per instance of the system interface (kernel vs each
// agent layer) and the per-syscall latency distribution.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"interpose/internal/experiments"
)

func main() {
	table := flag.String("table", "all", "comma-separated tables to run: 3-1, 3-2, 3-3, 3-4, 3-5, dfs, scale, obs, sup, trace, crash, worldd, pool, resil, all")
	runs := flag.Int("runs", 9, "timed repetitions per row (after one discarded run)")
	programs := flag.Int("programs", 8, "program count for the make workload")
	benchJSON := flag.Bool("json", false, "write measured rows to BENCH_<date>.json")
	check := flag.String("check", "", "baseline BENCH json to compare against; exit 1 if a guarded row regresses >50%")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	want := func(name string) bool {
		for _, t := range strings.Split(*table, ",") {
			if t == "all" || t == name {
				return true
			}
		}
		return false
	}
	var entries []experiments.BenchEntry

	if want("3-1") {
		rows, err := experiments.RunTable31()
		if err != nil {
			fail(err)
		}
		experiments.PrintTable31(os.Stdout, rows)
	}
	if want("3-2") {
		rows, err := experiments.RunTable32(*runs)
		if err != nil {
			fail(err)
		}
		experiments.PrintMacro(os.Stdout, "Table 3-2: Time to format the dissertation", rows)
		entries = append(entries, experiments.MacroEntries("3-2", rows)...)
	}
	if want("3-3") {
		rows, err := experiments.RunTable33(*runs, *programs)
		if err != nil {
			fail(err)
		}
		experiments.PrintMacro(os.Stdout,
			fmt.Sprintf("Table 3-3: Time to make %d programs", *programs), rows)
		entries = append(entries, experiments.MacroEntries("3-3", rows)...)
	}
	if want("3-4") {
		t, err := experiments.RunTable34()
		if err != nil {
			fail(err)
		}
		experiments.PrintTable34(os.Stdout, t)
		entries = append(entries,
			experiments.BenchEntry{Table: "3-4", Row: "procedure-call", NsPerOp: t.ProcedureCall.Nanoseconds()},
			experiments.BenchEntry{Table: "3-4", Row: "interface-call", NsPerOp: t.InterfaceCall.Nanoseconds()},
			experiments.BenchEntry{Table: "3-4", Row: "intercept-return", NsPerOp: t.InterceptReturn.Nanoseconds()},
			experiments.BenchEntry{Table: "3-4", Row: "downcall", NsPerOp: t.Downcall.Nanoseconds()})
	}
	if want("3-5") {
		rows, err := experiments.RunTable35()
		if err != nil {
			fail(err)
		}
		experiments.PrintTable35(os.Stdout, rows)
		for _, r := range rows {
			entries = append(entries,
				experiments.BenchEntry{Table: "3-5", Row: r.Name + "/without", NsPerOp: r.Without.Nanoseconds()},
				experiments.BenchEntry{Table: "3-5", Row: r.Name + "/with", NsPerOp: r.With.Nanoseconds()})
		}
	}
	if want("dfs") {
		res, err := experiments.RunDFSTraceComparison()
		if err != nil {
			fail(err)
		}
		kStmts, aStmts, err := experiments.DFSTraceSizes()
		if err != nil {
			fail(err)
		}
		experiments.PrintDFSTrace(os.Stdout, res, kStmts, aStmts)
		entries = append(entries,
			experiments.BenchEntry{Table: "dfs", Row: "untraced", NsPerOp: res.Base.Nanoseconds()},
			experiments.BenchEntry{Table: "dfs", Row: "kernel-based", NsPerOp: res.Kernel.Nanoseconds()},
			experiments.BenchEntry{Table: "dfs", Row: "dfstrace-agent", NsPerOp: res.Agent.Nanoseconds()})
	}
	if want("scale") {
		rows, err := experiments.RunScale(*runs, *programs)
		if err != nil {
			fail(err)
		}
		statRows, err := experiments.RunStatHeavy(*runs)
		if err != nil {
			fail(err)
		}
		rows = append(rows, statRows...)
		experiments.PrintScale(os.Stdout, *programs, rows)
		entries = append(entries, experiments.ScaleEntries(rows)...)
	}
	if want("obs") {
		res, err := experiments.RunObs(*programs)
		if err != nil {
			fail(err)
		}
		experiments.PrintObs(os.Stdout, res)
		entries = append(entries,
			experiments.BenchEntry{Table: "obs", Row: "make-under-trace", NsPerOp: res.Elapsed.Nanoseconds()})
	}
	if want("sup") {
		rows, err := experiments.RunSupervised()
		if err != nil {
			fail(err)
		}
		experiments.PrintSup(os.Stdout, rows)
		entries = append(entries, experiments.SupEntries(rows)...)
	}
	if want("trace") {
		rows, err := experiments.RunTraceTable()
		if err != nil {
			fail(err)
		}
		experiments.PrintTrace(os.Stdout, rows)
		entries = append(entries, experiments.TraceEntries(rows)...)
	}

	if want("crash") {
		rows, err := experiments.RunCrashTable(*runs)
		if err != nil {
			fail(err)
		}
		experiments.PrintCrash(os.Stdout, rows)
		entries = append(entries, experiments.CrashEntries(rows)...)
	}

	if want("worldd") {
		rows, err := experiments.RunWorlddTable(*runs)
		if err != nil {
			fail(err)
		}
		experiments.PrintWorldd(os.Stdout, rows)
		entries = append(entries, experiments.WorlddEntries(rows)...)
	}

	if want("pool") {
		rows, err := experiments.RunPoolTable(*runs)
		if err != nil {
			fail(err)
		}
		experiments.PrintPool(os.Stdout, rows)
		entries = append(entries, experiments.PoolEntries(rows)...)
	}

	if want("resil") {
		rows, err := experiments.RunResilTable(*runs)
		if err != nil {
			fail(err)
		}
		experiments.PrintResil(os.Stdout, rows)
		entries = append(entries, experiments.ResilEntries(rows)...)
	}

	if *benchJSON {
		name := "BENCH_" + time.Now().Format("2006-01-02") + ".json"
		if err := experiments.WriteBenchJSON(name, entries); err != nil {
			fail(err)
		}
		fmt.Println("wrote " + name)
	}

	if *check != "" {
		baseline, err := experiments.ReadBenchJSON(*check)
		if err != nil {
			fail(err)
		}
		report, err := experiments.CheckBaseline(baseline, entries,
			experiments.GuardedRows, experiments.MaxRegress)
		fmt.Printf("Baseline check against %s:\n%s", *check, report)
		if err != nil {
			fail(err)
		}
		relReport, err := experiments.CheckRelations(entries, experiments.Relations)
		if relReport != "" {
			fmt.Printf("Relation check:\n%s", relReport)
		}
		if err != nil {
			fail(err)
		}
	}
}
