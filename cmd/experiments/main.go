// Command experiments regenerates every table of the paper's evaluation
// section against this reproduction:
//
//	experiments              # all tables
//	experiments -table 3-2   # one table (3-1, 3-2, 3-3, 3-4, 3-5, dfs)
//	experiments -runs 9      # timed repetitions per row (paper used 9)
package main

import (
	"flag"
	"fmt"
	"os"

	"interpose/internal/experiments"
)

func main() {
	table := flag.String("table", "all", "which table to run: 3-1, 3-2, 3-3, 3-4, 3-5, dfs, all")
	runs := flag.Int("runs", 9, "timed repetitions per row (after one discarded run)")
	programs := flag.Int("programs", 8, "program count for the make workload")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	want := func(name string) bool { return *table == "all" || *table == name }

	if want("3-1") {
		rows, err := experiments.RunTable31()
		if err != nil {
			fail(err)
		}
		experiments.PrintTable31(os.Stdout, rows)
	}
	if want("3-2") {
		rows, err := experiments.RunTable32(*runs)
		if err != nil {
			fail(err)
		}
		experiments.PrintMacro(os.Stdout, "Table 3-2: Time to format the dissertation", rows)
	}
	if want("3-3") {
		rows, err := experiments.RunTable33(*runs, *programs)
		if err != nil {
			fail(err)
		}
		experiments.PrintMacro(os.Stdout,
			fmt.Sprintf("Table 3-3: Time to make %d programs", *programs), rows)
	}
	if want("3-4") {
		experiments.PrintTable34(os.Stdout, experiments.RunTable34())
	}
	if want("3-5") {
		rows, err := experiments.RunTable35()
		if err != nil {
			fail(err)
		}
		experiments.PrintTable35(os.Stdout, rows)
	}
	if want("dfs") {
		res, err := experiments.RunDFSTraceComparison()
		if err != nil {
			fail(err)
		}
		kStmts, aStmts, err := experiments.DFSTraceSizes()
		if err != nil {
			fail(err)
		}
		experiments.PrintDFSTrace(os.Stdout, res, kStmts, aStmts)
	}
}
