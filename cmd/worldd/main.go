// Command worldd serves simulated worlds over a unix-socket HTTP/JSON
// API: a multi-tenant daemon hosting many independent machines
// (internal/world) in one process, each with its own agent stack,
// resource budgets, and optional journal.
//
//	worldd [-socket /run/worldd.sock] [-state-dir /var/lib/worldd] [-quiet]
//	       [-no-health] [-health-interval 1s] [-session-deadline 30s]
//	       [-restart-budget 5] [-max-inflight 1024]
//
// A tenant's `journal` field names a key, not a path: the daemon keeps
// every journal file inside -state-dir, so the wire API can never reach
// another host file. A health watchdog (on by default) probes idle
// worlds, declares crashed/wedged ones dead, and rebuilds them under a
// per-tenant restart budget; a tenant's `admission` spec caps its
// concurrent sessions and session rate. Talk to it with curl:
//
//	curl --unix-socket /run/worldd.sock -X POST -d '{"name":"t1","agents":["trace"],"journal":"t1"}' \
//	    http://worldd/1.0/worlds
//	curl --unix-socket /run/worldd.sock -X POST -d '{"argv":["echo","hello"]}' \
//	    http://worldd/1.0/worlds/w1/exec
//	curl --unix-socket /run/worldd.sock http://worldd/1.0/metrics
//	curl --unix-socket /run/worldd.sock -X DELETE http://worldd/1.0/worlds/w1
//
// SIGTERM (or SIGINT) drains gracefully: the socket stops accepting,
// in-flight sessions finish, every world is closed — journals flushed,
// guest processes reaped — and the daemon exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"interpose/internal/apps"
	"interpose/internal/worldd"
)

func main() {
	socket := flag.String("socket", "worldd.sock", "unix socket path for the API")
	stateDir := flag.String("state-dir", "worldd.state", "directory for tenant journal files (empty refuses file-backed journals)")
	quiet := flag.Bool("quiet", false, "suppress per-event log lines")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "bound on graceful drain after SIGTERM")
	noHealth := flag.Bool("no-health", false, "disable the health watchdog (no probes, no automatic recovery)")
	probeInterval := flag.Duration("health-interval", 0, "watchdog sweep period and idle-probe cadence (0 = default 1s)")
	probeTimeout := flag.Duration("probe-timeout", 0, "liveness probe deadline before a world is declared dead (0 = default 1s)")
	sessionDeadline := flag.Duration("session-deadline", 0, "session age marking a world suspect, dead at twice it (0 = default 30s)")
	restartBudget := flag.Int("restart-budget", 0, "recovery attempts per world within the restart window before it is parked (0 = default 5)")
	restartWindow := flag.Duration("restart-window", 0, "sliding window for the restart budget (0 = default 1m)")
	maxInflight := flag.Int("max-inflight", 0, "global concurrent-session cap before requests are shed with 429 (0 = default 1024, negative disables)")
	flag.Parse()

	cfg := worldd.Config{
		Register: apps.Register,
		StateDir: *stateDir,
		Health: worldd.HealthConfig{
			Disabled:        *noHealth,
			ProbeInterval:   *probeInterval,
			ProbeTimeout:    *probeTimeout,
			SessionDeadline: *sessionDeadline,
			RestartBudget:   *restartBudget,
			RestartWindow:   *restartWindow,
		},
		MaxInflight: *maxInflight,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	srv, err := worldd.New(cfg)
	if err != nil {
		fatal(err)
	}
	ln, err := worldd.ListenUnix(*socket)
	if err != nil {
		fatal(err)
	}
	log.Printf("worldd: serving on %s", *socket)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("worldd: %s: draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fatal(err)
		}
		<-done
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	}
	os.Remove(*socket)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "worldd:", err)
	os.Exit(1)
}
