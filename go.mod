module interpose

go 1.22
