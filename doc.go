// Package interpose is a reproduction of "Interposition Agents:
// Transparently Interposing User Code at the System Interface"
// (Michael B. Jones, SOSP 1993) as a Go library.
//
// The repository contains a complete simulated 4.3BSD system (kernel,
// filesystem, processes, signals — internal/kernel and friends), the
// paper's layered interposition toolkit (internal/core), the paper's
// agents and several more (internal/agents/...), the applications used by
// the paper's evaluation (internal/apps), and a harness that regenerates
// every table of the evaluation (internal/experiments, cmd/experiments).
//
// Start with examples/quickstart, or run a program under agents with
// cmd/agentrun:
//
//	go run ./examples/quickstart
//	go run ./cmd/agentrun -a trace -- echo hello
//	go run ./cmd/experiments -table 3-3
//
// The benchmarks in bench_test.go regenerate the paper's tables under
// `go test -bench`. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for measured-versus-paper results.
package interpose
