// Span tracer microbenchmarks: the cost of causal tracing at each
// sampling setting. Off is the pay-per-use contract — with no tracer
// installed the syscall path pays one atomic pointer load, so it must
// stay within noise of BenchmarkScalability_SyscallThroughput/off — and
// Sampled is what the perf-smoke gate folds into its guarded rows
// (trace:getpid()/{off,sampled} in BENCH_BASELINE.json): the unsampled
// 99% of calls pay one xorshift draw, no clock reads, no recording.
// Full is the worst case: every call allocates a trace, reads the clock
// twice, and records a root span.
//
//	go test -bench 'Trace' .
package interpose_test

import (
	"testing"

	"interpose/internal/sys"
	"interpose/internal/trace"
)

// benchTraceProcs runs the parallel getpid storm with an optional span
// tracer installed, one guest process per worker goroutine.
func benchTraceProcs(b *testing.B, cfg *trace.Config) {
	b.Helper()
	k := mustWorld(b)
	if cfg != nil {
		k.SetSpanTracer(trace.NewTracer(*cfg))
	}
	b.RunParallel(func(pb *testing.PB) {
		p := k.NewProc()
		for pb.Next() {
			p.Syscall(sys.SYS_getpid, sys.Args{})
		}
	})
}

// BenchmarkTrace_Off is the floor: no tracer installed. Must match
// BenchmarkScalability_SyscallThroughput/off.
func BenchmarkTrace_Off(b *testing.B) {
	benchTraceProcs(b, nil)
}

// BenchmarkTrace_Sampled is a tracer at 1% head sampling: the common
// production setting, dominated by the unsampled path.
func BenchmarkTrace_Sampled(b *testing.B) {
	benchTraceProcs(b, &trace.Config{Sample: 0.01, TailErrors: true})
}

// BenchmarkTrace_Full is every call sampled: root span per call, shard
// lock per record.
func BenchmarkTrace_Full(b *testing.B) {
	benchTraceProcs(b, &trace.Config{Sample: 1})
}
