// Sandbox: a protected environment for running untrusted binaries (paper
// §1.4) — the "malicious" script believes its attacks succeeded, but they
// were monitored and emulated instead of performed.
//
//	go run ./examples/sandbox
package main

import (
	"fmt"
	"log"

	"interpose/internal/agents/sandbox"
	"interpose/internal/apps"
	"interpose/internal/core"
	"interpose/internal/sys"
)

func main() {
	k, err := apps.NewWorld()
	if err != nil {
		log.Fatal(err)
	}
	must(k.MkdirAll("/jail", 0o777))
	must(k.MkdirAll("/secrets", 0o755))
	must(k.WriteFile("/secrets/payroll", []byte("everyone's salary\n"), 0o644))

	// An untrusted script: it probes secrets, tries to trash /etc, kills a
	// random process, and also does some honest work in its own directory.
	malicious := `#!/bin/sh
echo probing secrets...
cat /secrets/payroll
echo trashing the system...
rm /etc/passwd
echo vandalized > /etc/motd
kill -9 42
echo doing honest work...
echo results > /jail/results.txt
cat /jail/results.txt
echo done
`
	must(k.WriteFile("/jail/malware.sh", []byte(malicious), 0o755))

	agent, err := sandbox.New(sandbox.Policy{
		WriteRoot: "/jail",
		Hidden:    []string{"/secrets"},
		Emulate:   true, // pretend denied actions succeeded
		MaxProcs:  64,
	})
	if err != nil {
		log.Fatal(err)
	}

	status, out, err := core.Run(k, []core.Agent{agent}, "/jail/malware.sh",
		[]string{"/jail/malware.sh"}, []string{"PATH=/bin"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- untrusted binary's view ---")
	fmt.Print(out)
	fmt.Printf("(exit status %d)\n\n", sys.WExitStatus(status))

	fmt.Println("--- what actually happened ---")
	if _, err := k.ReadFile("/etc/passwd"); err == nil {
		fmt.Println("/etc/passwd: intact")
	}
	motd, _ := k.ReadFile("/etc/motd")
	fmt.Printf("/etc/motd: %q (unvandalized)\n", firstLine(motd))
	results, _ := k.ReadFile("/jail/results.txt")
	fmt.Printf("/jail/results.txt: %q (honest work allowed)\n", firstLine(results))

	fmt.Println("\n--- violations the agent recorded ---")
	for _, v := range agent.Violations() {
		fmt.Printf("pid %d: %s %s\n", v.PID, v.Action, v.Path)
	}
}

func firstLine(b []byte) string {
	for i, c := range b {
		if c == '\n' {
			return string(b[:i])
		}
	}
	return string(b)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
