// Union directories: the paper's §3.3.3 agent and its §1.4 motivating
// use — distinct source and object directories appear as a single build
// directory when running make.
//
//	go run ./examples/unionfs
package main

import (
	"fmt"
	"log"

	"interpose/internal/agents/union"
	"interpose/internal/apps"
	"interpose/internal/core"
	"interpose/internal/sys"
)

func main() {
	k, err := apps.NewWorld()
	if err != nil {
		log.Fatal(err)
	}

	// Sources in /srcs (read-only, conceptually); objects in /objs.
	must(k.MkdirAll("/srcs", 0o755))
	must(k.MkdirAll("/objs", 0o777))
	must(k.WriteFile("/srcs/defs.h", []byte("#define GREETING 7\n"), 0o644))
	must(k.WriteFile("/srcs/main.c", []byte(`#include "defs.h"
main() { prints("greeting code: "); print(GREETING); return 0; }
`), 0o644))
	must(k.WriteFile("/srcs/Makefile", []byte(
		"/build/prog: /build/main.c /build/defs.h\n"+
			"\tcc -o /build/prog /build/main.c\n"), 0o644))

	agent, err := union.New("/build=/objs:/srcs")
	if err != nil {
		log.Fatal(err)
	}

	run := func(desc, cmd string) string {
		status, out, err := core.Run(k, []core.Agent{agent}, "/bin/sh",
			[]string{"sh", "-c", cmd}, []string{"PATH=/bin"})
		if err != nil || sys.WExitStatus(status) != 0 {
			log.Fatalf("%s: %v %#x\n%s", desc, err, status, out)
		}
		return out
	}

	fmt.Println("union view /build = /objs (objects) over /srcs (sources):")
	fmt.Print(run("ls", "ls /build"))

	fmt.Println("\nbuilding through the union (sources read from /srcs, objects created in /objs):")
	fmt.Print(run("make", "mk -f /build/Makefile /build/prog && /build/prog"))

	fmt.Println("\nafter the build, the union lists both layers' contents:")
	fmt.Print(run("ls", "ls /build"))

	// Without the agent, the layers are plainly separate.
	bare := func(cmd string) string {
		status, out, err := core.Run(k, nil, "/bin/sh",
			[]string{"sh", "-c", cmd}, []string{"PATH=/bin"})
		if err != nil || sys.WExitStatus(status) != 0 {
			log.Fatalf("%s: %v %#x", cmd, err, status)
		}
		return out
	}
	fmt.Println("\nunderneath, without the agent — objects landed in /objs:")
	fmt.Print(bare("ls /objs"))
	fmt.Println("and /srcs still holds only the sources:")
	fmt.Print(bare("ls /srcs"))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
