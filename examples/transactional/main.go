// Transactional environments (paper §1.4): a "run_transaction" command —
// arbitrary unmodified programs execute with all persistent side effects
// buffered; the user then commits or aborts. One transactional invocation
// runs inside another, giving nested transactions.
//
//	go run ./examples/transactional
package main

import (
	"fmt"
	"log"

	"interpose/internal/agents/txn"
	"interpose/internal/apps"
	"interpose/internal/core"
	"interpose/internal/kernel"
	"interpose/internal/sys"
)

func main() {
	k, err := apps.NewWorld()
	if err != nil {
		log.Fatal(err)
	}
	must(k.MkdirAll("/data", 0o777))
	must(k.WriteFile("/data/ledger.txt", []byte("balance: 100\n"), 0o644))

	workload := "echo balance: 40 > /data/ledger.txt; echo receipt > /data/receipt.txt; cat /data/ledger.txt"

	// Run 1: abort. The program sees its changes, the system keeps none.
	fmt.Println("=== run_transaction (abort) ===")
	runTxn(k, "/tmp/txn1", false, workload)
	show(k, "after abort")

	// Run 2: commit. Same workload; this time the changes persist.
	fmt.Println("\n=== run_transaction (commit) ===")
	runTxn(k, "/tmp/txn2", true, workload)
	show(k, "after commit")

	// Nested: an inner committed transaction inside an outer aborted one.
	fmt.Println("\n=== nested transactions ===")
	must(k.WriteFile("/data/ledger.txt", []byte("balance: 100\n"), 0o644))
	must(k.Remove("/data/receipt.txt"))
	outer, err := txn.New("/tmp/outer", false) // outer aborts
	must(err)
	inner, err := txn.New("/tmp/inner", true) // inner commits (into the outer!)
	must(err)
	status, out, rerr := core.Run(k, []core.Agent{outer, inner}, "/bin/sh",
		[]string{"sh", "-c", "echo balance: 0 > /data/ledger.txt; cat /data/ledger.txt"},
		[]string{"PATH=/bin"})
	must(rerr)
	fmt.Printf("inside nested txn (exit %d):\n%s", sys.WExitStatus(status), out)
	writes, _ := outer.Changes()
	// The outer transaction also sees the inner one's shadow bookkeeping;
	// only the /data changes are interesting here.
	var dataWrites []string
	for _, w := range writes {
		if len(w) >= 6 && w[:6] == "/data/" {
			dataWrites = append(dataWrites, w)
		}
	}
	fmt.Printf("the inner commit surfaced in the OUTER transaction: %v\n", dataWrites)
	show(k, "after the outer abort, the real ledger")
}

func runTxn(k *kernel.Kernel, shadow string, commit bool, workload string) {
	agent, err := txn.New(shadow, commit)
	must(err)
	status, out, rerr := core.Run(k, []core.Agent{agent}, "/bin/sh",
		[]string{"sh", "-c", workload}, []string{"PATH=/bin"})
	must(rerr)
	fmt.Printf("inside the transaction (exit %d):\n%s", sys.WExitStatus(status), out)
	writes, removes := agent.Changes()
	fmt.Printf("buffered changes: writes=%v removes=%v\n", writes, removes)
}

func show(k *kernel.Kernel, when string) {
	ledger, _ := k.ReadFile("/data/ledger.txt")
	_, receiptErr := k.ReadFile("/data/receipt.txt")
	receipt := "absent"
	if receiptErr == nil {
		receipt = "present"
	}
	fmt.Printf("%s: ledger=%q receipt=%s\n", when, trim(ledger), receipt)
}

func trim(b []byte) string {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		return string(b[:n-1])
	}
	return string(b)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
