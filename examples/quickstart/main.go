// Quickstart: boot the simulated system, run a program, then run the same
// unmodified program under an interposition agent and watch its view of
// the world change.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"interpose/internal/agents/timex"
	"interpose/internal/apps"
	"interpose/internal/core"
	"interpose/internal/sys"
)

func main() {
	// 1. Boot a world: a simulated 4.3BSD kernel with the application
	//    programs installed in /bin.
	k, err := apps.NewWorld()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Run /bin/date directly on the kernel.
	status, out, err := core.Run(k, nil, "/bin/date", []string{"date"}, nil)
	if err != nil || sys.WExitStatus(status) != 0 {
		log.Fatalf("date: %v status=%#x", err, status)
	}
	fmt.Printf("without agent, date says:  %s", out)

	// 3. Build a timex agent — the paper's minimal example — that shifts
	//    the apparent time of day one year into the future, and run the
	//    very same binary under it.
	agent, err := timex.New(fmt.Sprint(365 * 24 * 3600))
	if err != nil {
		log.Fatal(err)
	}
	status, out, err = core.Run(k, []core.Agent{agent}, "/bin/date", []string{"date"}, nil)
	if err != nil || sys.WExitStatus(status) != 0 {
		log.Fatalf("date under timex: %v status=%#x", err, status)
	}
	fmt.Printf("under timex(+1y), it says: %s", out)

	fmt.Println("\nThe binary is unmodified; the kernel is unmodified.")
	fmt.Println("Only the agent between them changed what gettimeofday returns.")
}
