// Tracing: run a multi-process build under the trace agent, the paper's
// §3.3.2 example — every system call and signal of make, the compiler
// driver, and all their children is printed as it happens.
//
//	go run ./examples/tracing
package main

import (
	"fmt"
	"log"
	"strings"

	"interpose/internal/agents/trace"
	"interpose/internal/apps"
	"interpose/internal/core"
	"interpose/internal/sys"
)

func main() {
	k, err := apps.NewWorld()
	if err != nil {
		log.Fatal(err)
	}
	// The paper's Table 3-3 workload, at 2 programs for a readable trace.
	if err := apps.GenMakeTree(k, "/src", 2); err != nil {
		log.Fatal(err)
	}

	status, out, err := core.Run(k, []core.Agent{trace.New()}, "/bin/sh",
		[]string{"sh", "-c", "cd /src; mk all"}, []string{"PATH=/bin"})
	if err != nil || sys.WExitStatus(status) != 0 {
		log.Fatalf("traced make failed: %v %#x\n%s", err, status, out)
	}

	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	fmt.Printf("the traced build produced %d lines; a sample:\n\n", len(lines))
	for i, line := range lines {
		if i < 12 || i >= len(lines)-12 {
			fmt.Println(line)
		} else if i == 12 {
			fmt.Printf("  ... %d lines elided ...\n", len(lines)-24)
		}
	}

	forks := strings.Count(out, "fork()")
	execs := strings.Count(out, "execve(")
	fmt.Printf("\nthe build used %d forks and %d execs, all traced across the process tree\n", forks, execs)
}
